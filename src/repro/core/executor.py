"""Event-driven execution of one training iteration under a memory manager.

Two entry points:

* :func:`simulate_baseline` — the Torch-style network-wide allocation
  policy of Section IV-A: everything (all feature maps, weights, the two
  reused dY/dX ping-pong buffers, one shared maximum-size workspace) is
  allocated up front, so maximum usage equals average usage, and the
  network is trainable iff that total fits the GPU.
* :func:`simulate_vdnn` — the vDNN manager of Section III: layer-wise
  allocation from a cnmem-style pool, offload of input feature maps on
  ``stream_memory`` overlapped with the owning layer's forward kernel,
  end-of-layer synchronization, release at the refcount-gated last
  consumer, and Figure-10 prefetching overlapped with backward kernels.

Both run the same roofline kernel latencies on the same simulated CUDA
streams, so their timelines are directly comparable (Figure 14).  The
simulation allocates from an *unbounded* pool and judges trainability by
comparing the peak live bytes against the GPU's physical capacity — with
no thrashing in the model this is exact, and it lets untrainable
configurations still report the memory they would have needed (the
``(*)``-marked bars of Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..alloc.pinned import PinnedHostAllocator, PinnedMemoryError
from ..alloc.pool import Allocation, PoolAllocator
from ..alloc.stats import UsageTracker
from ..analysis.trace import ScheduleTrace
from ..faults import DMAAbortError, FaultInjector, FaultReport, FaultSpec, make_injector
from ..graph.network import Network
from ..hw.config import SystemConfig
from ..obs import Instrumentation
from ..sim.stream import make_stream_pair
from ..sim.timeline import EventKind, Timeline
from .algo_config import AlgoConfig
from .liveness import LivenessAnalysis
from .plan import BackwardStep, CompiledPlan, ForwardStep, StorageRecord, \
    compiled_plan
from .policy import TransferPolicy
from .prefetcher import PrefetchState, find_prefetch_layer

_FORWARD = EventKind.FORWARD
_BACKWARD = EventKind.BACKWARD
_OFFLOAD = EventKind.OFFLOAD
_PREFETCH = EventKind.PREFETCH

#: Pool capacity used for simulation runs; trainability is decided by
#: comparing peak usage to the *real* GPU capacity afterwards.
_UNBOUNDED = 1 << 50


@dataclass
class IterationResult:
    """Everything one simulated training iteration produces.

    Memory is reported at two scopes, mirroring the paper's prototype
    (Section IV-A): the **managed** scope is the vDNN/cnmem pool holding
    feature maps, gradient maps, workspaces and feature-extraction
    weights — what Figure 11's usage bars measure — while classifier
    (FC) weights "remain unchanged and use the same cuBLAS routines used
    in Torch", i.e. live outside the pool (``external_bytes``).  The
    trainability check uses the sum of both scopes.
    """

    network_name: str
    policy_label: str
    algo_label: str
    trainable: bool
    failure: Optional[str]
    timeline: Timeline
    usage: UsageTracker
    managed_max_bytes: int
    managed_avg_bytes: float
    external_bytes: int
    persistent_bytes: int
    total_time: float
    feature_extraction_time: float
    offload_bytes: int
    prefetch_bytes: int
    pinned_peak_bytes: int
    compute_stall_seconds: float
    #: Uncompressed bytes behind ``offload_bytes``: equal for plain
    #: policies, larger when the cDMA engine shrank the wire traffic.
    offload_raw_bytes: int = 0
    offloaded_layers: List[int] = field(default_factory=list)
    #: Per-layer weight bytes an inference pass must load on-device,
    #: keyed by layer index (populated by ``simulate_inference``; empty
    #: for training results).  One accounting path shared with the
    #: serving subsystem's demand-layering executor.
    weight_load_bytes: Dict[int, int] = field(default_factory=dict)
    #: Populated only when the simulation ran with ``verify=True``; the
    #: schedule sanitizer's input (see :mod:`repro.analysis`).  Excluded
    #: from equality: tracing must not change what a result *is*.
    schedule_trace: Optional[ScheduleTrace] = field(
        default=None, compare=False, repr=False)
    #: Populated only when the simulation ran under fault injection; the
    #: audit trail of every injected fault and its resolution.  Excluded
    #: from equality like the trace (a report of what happened, not part
    #: of what the result *is*).
    fault_report: Optional[FaultReport] = field(
        default=None, compare=False, repr=False)

    @property
    def max_usage_bytes(self) -> int:
        """Peak device-memory footprint including unmanaged allocations."""
        return self.managed_max_bytes + self.external_bytes

    @property
    def avg_usage_bytes(self) -> float:
        """Average device-memory footprint including unmanaged allocations."""
        return self.managed_avg_bytes + self.external_bytes

    @property
    def label(self) -> str:
        return f"{self.policy_label}({self.algo_label})"


def _feature_extraction_time(
    network: Network, timeline: Timeline, classifier=None
) -> float:
    """Wall time minus the classifier window (Section V-C's metric)."""
    if classifier is None:
        classifier = {n.index for n in network.classifier_nodes}
    window = timeline.layer_window(classifier)
    if window is None:
        return timeline.span
    return max(timeline.span - (window[1] - window[0]), 0.0)


# ----------------------------------------------------------------------
# Baseline manager
# ----------------------------------------------------------------------
def baseline_allocation_bytes(
    network: Network, algos: AlgoConfig, liveness: Optional[LivenessAnalysis] = None
) -> Dict[str, int]:
    """Network-wide allocation breakdown of the baseline policy.

    Returns a dict with keys ``weights``, ``weight_gradients``,
    ``feature_maps``, ``gradient_maps``, ``workspace`` and ``total`` —
    the functional breakdown of the paper's Figure 4.
    """
    liveness = liveness or LivenessAnalysis(network)
    weights = network.total_weight_bytes()
    feature_maps = liveness.total_feature_map_bytes()
    # Two reused dY/dX buffers, each sized to the maximum gradient map
    # (Section IV-A's improved baseline, after [38, 39]).
    gradient_maps = 2 * liveness.max_gradient_bytes()
    workspace = algos.max_workspace_bytes()
    return {
        "weights": weights,
        "weight_gradients": weights,
        "feature_maps": feature_maps,
        "gradient_maps": gradient_maps,
        "workspace": workspace,
        "total": weights * 2 + feature_maps + gradient_maps + workspace,
    }


def simulate_baseline(
    network: Network,
    system: SystemConfig,
    algos: AlgoConfig,
    verify: bool = False,
    obs: Optional[Instrumentation] = None,
) -> IterationResult:
    """One iteration under the network-wide allocation policy."""
    plan = compiled_plan(network, system, algos)
    compute, _memory, timeline = make_stream_pair()
    breakdown = plan.baseline_breakdown
    total = breakdown["total"]

    usage = UsageTracker()
    usage.record(0.0, total)
    if obs is not None:
        obs.pool_sample(total, system.gpu.memory_bytes, 0.0)

    # Baseline has one network-wide reservation and one stream: the
    # trace degenerates to alloc / kernels / free, but running it through
    # the sanitizer still checks the MS1xx lifetime rules.
    trace = ScheduleTrace() if verify else None
    if trace is not None:
        trace.alloc("NET", total, label="network-wide")

    for step in plan.forward:
        if step.is_input:
            continue
        start, end = compute.push(_FORWARD, step.name, step.seconds,
                                  nbytes=step.dram_nbytes,
                                  layer_index=step.index)
        if trace is not None:
            trace.kernel(step.name, compute.name, reads=("NET",),
                         writes=("NET",), layer=step.index, phase="fwd",
                         start=start, end=end)
    forward_end = compute.ready_time
    for step in plan.backward:
        start, end = compute.push(_BACKWARD, step.name, step.seconds,
                                  nbytes=step.dram_nbytes,
                                  layer_index=step.index)
        if trace is not None:
            trace.kernel(step.name, compute.name, reads=("NET",),
                         writes=("NET",), layer=step.index, phase="bwd",
                         start=start, end=end)

    if trace is not None:
        trace.free("NET", compute.name, label="network-wide", phase="end",
                   start=timeline.end_time)
    usage.record(timeline.end_time, total)
    if obs is not None:
        obs.span("forward", "phase", 0.0, forward_end, category="phase",
                 network=network.name, policy="base")
        obs.span("backward", "phase", forward_end, compute.ready_time,
                 category="phase", network=network.name, policy="base")
        obs.stream_busy(timeline.span,
                        ((compute.name, compute.busy_seconds),))
    trainable = total <= system.gpu.memory_bytes
    return IterationResult(
        network_name=network.name,
        policy_label="base",
        algo_label=algos.label,
        trainable=trainable,
        failure=None if trainable else (
            f"network-wide allocation of {total} bytes exceeds GPU "
            f"capacity of {system.gpu.memory_bytes} bytes"
        ),
        timeline=timeline,
        usage=usage,
        managed_max_bytes=total,
        managed_avg_bytes=float(total),
        external_bytes=0,
        persistent_bytes=breakdown["weights"] * 2,
        total_time=timeline.span,
        feature_extraction_time=_feature_extraction_time(
            network, timeline, classifier=plan.classifier_indices),
        offload_bytes=0,
        prefetch_bytes=0,
        pinned_peak_bytes=0,
        compute_stall_seconds=0.0,
        schedule_trace=trace,
    )


# ----------------------------------------------------------------------
# vDNN manager
# ----------------------------------------------------------------------
class _VDNNSimulation:
    """Stateful walk of one iteration under the vDNN manager.

    All per-layer decisions (what to allocate, offload, release; kernel
    timings; DMA durations; trace buffer names) come precomputed from a
    :class:`~repro.core.plan.CompiledPlan` — the walk itself is a tight
    loop over plan steps that only tracks the *dynamic* state: stream
    clocks, pool occupancy, the prefetch flags and any injected faults.
    """

    def __init__(
        self,
        network: Network,
        system: SystemConfig,
        policy: TransferPolicy,
        algos: AlgoConfig,
        plan: CompiledPlan,
        bounded_prefetch_window: bool = True,
        sync_after_offload: bool = True,
        sync_after_prefetch: bool = True,
        verify: bool = False,
        faults: Optional[FaultInjector] = None,
        obs: Optional[Instrumentation] = None,
    ):
        self.network = network
        self.system = system
        self.policy = policy
        self.algos = algos
        self.plan = plan
        self.wants = plan.offload_indices(policy, network)
        self.bounded_prefetch_window = bounded_prefetch_window
        self.sync_after_offload = sync_after_offload
        self.sync_after_prefetch = sync_after_prefetch
        self.faults = faults
        self.obs = obs
        self.trace: Optional[ScheduleTrace] = ScheduleTrace() if verify else None
        # pool offset -> (trace buffer id, storage owner) of the live
        # block there; offsets are unique among live blocks, so this maps
        # every Allocation back to its trace identity at free time.
        self._traced: Dict[int, tuple] = {}

        self.pool = PoolAllocator(_UNBOUNDED)
        pinned_capacity = system.host.max_pinned_bytes
        if faults is not None and faults.spec.pinned_budget_factor != 1.0:
            pinned_capacity = int(
                pinned_capacity * faults.spec.pinned_budget_factor)
        self.pinned = PinnedHostAllocator(pinned_capacity)
        self.compute, self.memory, self.timeline = make_stream_pair()
        self.usage = UsageTracker()
        self.state = PrefetchState.for_network(network)
        # Fig. 10 search outcomes, reported to obs once per run.
        self.prefetch_hits = 0
        self.prefetch_misses = 0

        # storage owner -> live device Allocation
        self.device: Dict[int, Allocation] = {}
        # storage owner -> live gradient Allocation
        self.gradients: Dict[int, Allocation] = {}
        # trigger layer -> storage records it offloaded
        self.offloaded_at: Dict[int, List[StorageRecord]] = {}
        # storage owner -> pinned host buffer
        self.host_buffers: Dict[int, object] = {}
        # storage owner -> wire bytes / DMA seconds actually staged on
        # the host (compressed offloads shrink both; the return trip
        # replays the same wire format).
        self.host_wire: Dict[int, int] = {}
        self.host_wire_seconds: Dict[int, float] = {}
        # storage owner -> True once restored by a prefetch
        self.restored: Dict[int, bool] = {}

        self.stall_seconds = 0.0
        self.offload_bytes = 0
        self.offload_raw_bytes = 0
        self.prefetch_bytes = 0
        self.external_bytes = 0
        self.offloaded_layers: List[int] = []

    # -- bookkeeping helpers -------------------------------------------
    def _sample(self) -> None:
        # No obs hook here: this runs on every alloc/free, and the pool
        # already tracks its exact high-water mark.  The end-of-run block
        # in simulate_vdnn reports it via pool_sample + pool_peak.
        self.usage.record(self.compute.ready_time, self.pool.live_bytes)

    def _alloc(self, owner: int, nbytes: int, tag: str,
               buffer: str = "", layer: int = -1, towner: int = -1,
               persistent: bool = False) -> Allocation:
        """Pool allocation; ``buffer``/``towner`` name it in the trace.

        ``towner`` is the storage-owner layer recorded for feature/
        gradient buffers (the refcount-gate rule keys on it); workspace
        and weight blocks pass -1 so the gate never applies to them.
        """
        allocation = self.pool.alloc(nbytes, tag)
        self._sample()
        if self.trace is not None and buffer:
            self.trace.alloc(
                buffer, nbytes, offset=allocation.offset,
                size=allocation.size, label=tag, layer=layer,
                owner=towner, persistent=persistent,
                start=self.compute.ready_time,
            )
            self._traced[allocation.offset] = (buffer, towner)
        return allocation

    def _free(self, allocation: Allocation, layer: int = -1,
              phase: str = "") -> None:
        if self.trace is not None:
            buffer, towner = self._traced.pop(allocation.offset, ("", -1))
            if buffer:
                self.trace.free(
                    buffer, self.compute.name, offset=allocation.offset,
                    size=allocation.size, label=allocation.tag,
                    layer=layer, owner=towner, phase=phase,
                    start=self.compute.ready_time,
                )
        self.pool.free(allocation)
        self._sample()

    def _stall(self, label: str, layer_index: int,
               cause: str = "offload-sync") -> None:
        """Synchronize compute behind memory, logging any wasted time."""
        before = self.compute.ready_time
        if self.trace is not None:
            # Always traced, even when it costs nothing: a free sync is
            # still the ordering edge the later release depends on.
            self.trace.sync(self.memory.name, label=label,
                            layer=layer_index, start=before)
        stall = self.compute.wait_for(self.memory)
        if stall > 0:
            self.stall_seconds += stall
            self.timeline.record(
                self.compute.name, EventKind.STALL, label,
                before, before + stall, layer_index=layer_index,
            )
            if self.obs is not None:
                self.obs.stall(cause, stall)
        if self.trace is not None:
            self.timeline.record(
                self.compute.name, EventKind.SYNC, label,
                before + max(stall, 0.0), before + max(stall, 0.0),
                layer_index=layer_index,
            )

    # -- DMA with fault injection --------------------------------------
    def _transfer(self, kind, label: str, nbytes: int,
                  earliest_start: float, layer_index: int,
                  fault_kind: str, direction: str = "",
                  seconds: float = 0.0):
        """Enqueue one DMA on ``stream_memory``, retrying under faults.

        Without an injector this is exactly one :meth:`SimStream.push`
        of ``seconds`` — the link's nominal rate, precomputed by the
        plan.  With one, each attempt draws a (possibly
        degraded/jittered) duration and may transiently fail; a failed
        attempt occupies the engine for its full duration (the error
        surfaces at completion), then the retry backs off exponentially
        on the same stream before re-attempting, up to
        ``max_dma_attempts``.

        Returns:
            ``((start, end), attempts)`` — the successful transfer's
            placement, or ``None`` when the retry budget was exhausted.
        """
        direction = direction or fault_kind
        if self.faults is None:
            start, end = self.memory.push(
                kind, label, seconds,
                earliest_start=earliest_start, nbytes=nbytes,
                layer_index=layer_index,
            )
            if self.obs is not None:
                self.obs.pcie_transfer(direction, nbytes, end - start)
            return (start, end), 1
        attempts = 0
        while True:
            attempts += 1
            duration = self.faults.dma_seconds(self.system.pcie, nbytes)
            if not self.faults.dma_fails(fault_kind):
                start, end = self.memory.push(
                    kind, label, duration,
                    earliest_start=earliest_start, nbytes=nbytes,
                    layer_index=layer_index,
                )
                if self.obs is not None:
                    self.obs.pcie_transfer(direction, nbytes, end - start)
                return (start, end), attempts
            self.memory.push(
                EventKind.FAULT, f"{label}!{attempts}", duration,
                earliest_start=earliest_start, nbytes=nbytes,
                layer_index=layer_index,
            )
            if self.obs is not None:
                self.obs.dma_attempt(direction, False)
            if attempts >= self.faults.spec.max_dma_attempts:
                return None, attempts
            backoff = self.faults.spec.backoff_seconds(attempts)
            if backoff > 0:
                self.memory.push(
                    EventKind.RETRY, f"{label}~{attempts}", backoff,
                    layer_index=layer_index,
                )
                if self.obs is not None:
                    self.obs.dma_backoff(backoff)

    # -- persistent allocations ----------------------------------------
    def allocate_persistent(self) -> int:
        """Weights and weight gradients.

        Feature-extraction weights live in the vDNN pool; classifier
        weights are Torch/cuBLAS allocations outside it (Section IV-A)
        and are accounted in :attr:`external_bytes`.
        """
        for item in self.plan.persistent:
            self._alloc(item.index, item.nbytes, item.w_tag,
                        buffer=item.w_buf, layer=item.index,
                        persistent=True)
            self._alloc(item.index, item.nbytes, item.dw_tag,
                        buffer=item.dw_buf, layer=item.index,
                        persistent=True)
        self.external_bytes = self.plan.external_bytes
        return self.plan.persistent_bytes

    # -- forward pass ----------------------------------------------------
    def run_forward(self) -> None:
        start = self.compute.ready_time
        try:
            for step in self.plan.forward:
                self._forward_layer(step)
        finally:
            if self.obs is not None:
                self.obs.span(
                    "forward", "phase", start,
                    max(self.compute.ready_time, self.memory.ready_time),
                    category="phase", network=self.network.name,
                    policy=self.policy.describe())

    def _forward_layer(self, step: ForwardStep) -> None:  # repro: hot
        index = step.index

        # Layer-wise allocation: this layer's output (unless in-place)
        # and its transient convolution workspace.
        rec = step.alloc_rec
        if rec is not None:
            self.device[rec.owner] = self._alloc(
                rec.owner, rec.nbytes, step.y_tag,
                buffer=rec.y_buf, layer=index, towner=rec.owner,
            )

        if step.is_input:
            return

        workspace: Optional[Allocation] = None
        if step.ws_bytes:
            workspace = self._alloc(index, step.ws_bytes, step.ws_tag,
                                    buffer=step.ws_buf, layer=index)

        fwd_start, fwd_end = self.compute.push(
            _FORWARD, step.name, step.seconds,
            nbytes=step.dram_nbytes, layer_index=index,
        )
        fwd_op = None
        if self.trace is not None:
            fwd_op = self.trace.kernel(
                step.name, self.compute.name, reads=step.trace_reads,
                writes=step.trace_writes, layer=index, phase="fwd",
                start=fwd_start, end=fwd_end,
            )

        # Release any input storage whose last consumer we are and that
        # is dead after forward: no transfer needed (the black-X arrows
        # of Figure 7).
        for rec in step.dead_releases:
            self._free(self.device.pop(rec.owner), layer=index, phase="fwd")

        # Offload the rest of the last-consumed inputs if the policy
        # says so (the refcount gate of Figure 3).
        if step.offload_candidates and index in self.wants:
            self._offload_inputs(step, fwd_start, fwd_op)

        if workspace is not None:
            self._free(workspace, layer=index, phase="fwd")

    def _offload_inputs(self, step: ForwardStep, fwd_start: float,
                        fwd_op) -> None:
        index = step.index
        compress = self.policy.compresses(index)
        completed: List[StorageRecord] = []
        for rec in step.offload_candidates:
            # Wire format: the cDMA engine stages and moves the
            # compressed image; decompression happens on the return
            # trip, so device allocations stay full-size.
            wire = rec.comp_nbytes if compress else rec.nbytes
            wire_seconds = rec.comp_dma_seconds if compress \
                else rec.dma_seconds
            try:
                buffer = self.pinned.alloc(wire, rec.host_tag)
            except PinnedMemoryError as error:
                if self.faults is None:
                    raise
                # Pinned-budget pressure: no staging buffer, so this
                # tensor simply stays resident on the device — more
                # memory used, but execution stays correct.
                self.faults.record(
                    "pinned-pressure", self.memory.ready_time,
                    rec.y_buf, outcome="degraded",
                    nbytes=wire,
                    detail=f"offload skipped, tensor stays resident "
                           f"({error})",
                )
                continue
            self.host_buffers[rec.owner] = buffer
            transfer, attempts = self._transfer(
                _OFFLOAD, rec.name, wire,
                earliest_start=fwd_start, layer_index=index,
                fault_kind="offload", seconds=wire_seconds,
            )
            if transfer is None:
                # Retry budget exhausted: abandon the offload and
                # keep the tensor resident instead.
                self.pinned.free(self.host_buffers.pop(rec.owner))
                self.faults.record(
                    "dma-offload", self.memory.ready_time,
                    rec.y_buf, attempts=attempts,
                    outcome="degraded", nbytes=wire,
                    detail="offload abandoned, tensor stays resident",
                )
                continue
            if attempts > 1:
                self.faults.record(
                    "dma-offload", transfer[1], rec.y_buf,
                    attempts=attempts, outcome="recovered",
                    nbytes=wire,
                    detail="transient DMA failure, retry succeeded",
                )
            if self.trace is not None:
                # The DMA starts no earlier than the trigger kernel,
                # i.e. after everything before it on compute: the
                # event-wait edge that keeps the producer ordered
                # before the transfer that reads its output.
                self.trace.offload(
                    rec.y_buf, self.memory.name,
                    nbytes=wire,
                    label=f"off[{rec.name}]",
                    layer=index, owner=rec.owner, target_layer=index,
                    wait_stream=self.compute.name,
                    wait_pos=fwd_op.pos - 1,
                    start=transfer[0], end=transfer[1],
                )
            self.host_wire[rec.owner] = wire
            self.host_wire_seconds[rec.owner] = wire_seconds
            self.offload_bytes += wire
            self.offload_raw_bytes += rec.nbytes
            if compress and self.obs is not None:
                self.obs.compression(rec.nbytes, wire)
            completed.append(rec)
        if completed:
            self.offloaded_at[index] = completed
            self.state.mark_offloaded(index)
            self.offloaded_layers.append(index)

            if self.sync_after_offload:
                self._stall(f"offload-sync {step.name}", index)
            for rec in completed:
                self._free(self.device.pop(rec.owner),
                           layer=index, phase="fwd")

    # -- backward pass ---------------------------------------------------
    def run_backward(self) -> None:
        start = self.compute.ready_time
        try:
            for step in self.plan.backward:
                self._backward_layer(step)
            self._release_remaining()
        finally:
            if self.obs is not None:
                self.obs.span(
                    "backward", "phase", start,
                    max(self.compute.ready_time, self.memory.ready_time),
                    category="phase", network=self.network.name,
                    policy=self.policy.describe())

    def _restore_on_demand(self, rec: StorageRecord, index: int) -> None:
        """Blocking prefetch for data the scheduler failed to stage."""
        wire = self.host_wire.get(rec.owner, rec.nbytes)
        wire_seconds = self.host_wire_seconds.get(
            rec.owner, rec.dma_seconds)
        self.device[rec.owner] = self._alloc(
            rec.owner, rec.nbytes, rec.demand_tag,
            buffer=rec.y_buf, layer=index, towner=rec.owner,
        )
        if self.obs is not None:
            self.obs.prefetch_event("demand")
        transfer, attempts = self._transfer(
            _PREFETCH, rec.name + "(demand)", wire,
            earliest_start=self.compute.ready_time, layer_index=index,
            fault_kind="prefetch", direction="demand",
            seconds=wire_seconds,
        )
        if transfer is None:
            # The backward kernel cannot run without this tensor and the
            # link refuses to deliver it: the iteration fails, loudly.
            self._free(self.device.pop(rec.owner), layer=index)
            self.faults.record(
                "dma-demand", self.memory.ready_time, rec.y_buf,
                attempts=attempts, outcome="fatal", nbytes=wire,
                detail="demand fetch exhausted its retry budget",
            )
            raise DMAAbortError(
                f"demand fetch of Y{rec.owner} for layer {index} "
                f"failed after {attempts} attempts"
            )
        if attempts > 1:
            self.faults.record(
                "dma-demand", transfer[1], rec.y_buf,
                attempts=attempts, outcome="recovered",
                nbytes=wire,
                detail="transient DMA failure, retry succeeded",
            )
        if self.trace is not None:
            self.trace.prefetch(
                rec.y_buf, self.memory.name,
                nbytes=wire,
                label=f"pre[{rec.name}](demand)",
                layer=index, owner=rec.owner,
                wait_stream=self.compute.name,
                wait_pos=self.trace.position(self.compute.name),
                demand=True, start=transfer[0], end=transfer[1],
            )
        self.prefetch_bytes += wire
        self._stall(f"demand-fetch {rec.owner}", index,
                    cause="demand-fetch")
        self.pinned.free(self.host_buffers.pop(rec.owner))
        self.restored[rec.owner] = True

    def _backward_layer(self, step: BackwardStep) -> None:  # repro: hot
        index = step.index
        device = self.device
        gradients = self.gradients

        # Safety net: anything this kernel reads must be on-device.
        for rec in step.required:
            if rec.owner not in device:
                self._restore_on_demand(rec, index)

        # Gradient twins born at this backward step.
        for rec in step.grad_allocs:
            if rec.owner not in gradients:
                gradients[rec.owner] = self._alloc(
                    rec.owner, rec.nbytes, rec.g_tag,
                    buffer=rec.g_buf, layer=index, towner=rec.owner,
                )

        workspace: Optional[Allocation] = None
        if step.ws_bytes:
            workspace = self._alloc(index, step.ws_bytes, step.ws_tag,
                                    buffer=step.ws_buf, layer=index)

        # Figure 10: launch (at most) one prefetch overlapped with this
        # backward kernel.  Search outcomes are counted in plain ints
        # (the return value says hit or miss) and reported to obs once
        # per run — no per-step hook dispatch.
        prefetch_target = find_prefetch_layer(
            self.network, self.state, index,
            bounded_window=self.bounded_prefetch_window,
        )
        if prefetch_target is None:
            self.prefetch_misses += 1
        else:
            self.prefetch_hits += 1
        launched_prefetch = False
        kernel_start = max(self.compute.ready_time, 0.0)
        if prefetch_target is not None:
            for rec in self.offloaded_at.get(prefetch_target, ()):
                if self.restored.get(rec.owner):
                    continue
                wire = self.host_wire.get(rec.owner, rec.nbytes)
                wire_seconds = self.host_wire_seconds.get(
                    rec.owner, rec.dma_seconds)
                device[rec.owner] = self._alloc(
                    rec.owner, rec.nbytes, rec.pre_tag,
                    buffer=rec.y_buf, layer=index, towner=rec.owner,
                )
                transfer, attempts = self._transfer(
                    _PREFETCH, rec.name, wire,
                    earliest_start=kernel_start, layer_index=index,
                    fault_kind="prefetch", seconds=wire_seconds,
                )
                if transfer is None:
                    # Prefetch abandoned: roll back the claim so the
                    # layer stays eligible (Fig. 10 retry or the demand
                    # safety net) instead of its X being silently lost.
                    self._free(device.pop(rec.owner), layer=index)
                    self.state.unclaim(prefetch_target)
                    if self.obs is not None:
                        self.obs.prefetch_event("unclaimed")
                    self.faults.record(
                        "dma-prefetch", self.memory.ready_time,
                        rec.y_buf, attempts=attempts,
                        outcome="deferred", nbytes=wire,
                        detail="prefetch abandoned, claim rolled back; "
                               "will retry or demand-fetch",
                    )
                    continue
                if attempts > 1:
                    self.faults.record(
                        "dma-prefetch", transfer[1], rec.y_buf,
                        attempts=attempts, outcome="recovered",
                        nbytes=wire,
                        detail="transient DMA failure, retry succeeded",
                    )
                if self.trace is not None:
                    self.trace.prefetch(
                        rec.y_buf, self.memory.name,
                        nbytes=wire,
                        label=f"pre[{rec.name}]",
                        layer=index, owner=rec.owner,
                        target_layer=prefetch_target,
                        wait_stream=self.compute.name,
                        wait_pos=self.trace.position(self.compute.name),
                        start=transfer[0], end=transfer[1],
                    )
                self.prefetch_bytes += wire
                self.pinned.free(self.host_buffers.pop(rec.owner))
                self.restored[rec.owner] = True
                launched_prefetch = True

        bwd_start, bwd_end = self.compute.push(
            _BACKWARD, step.name, step.seconds,
            nbytes=step.dram_nbytes, layer_index=index,
        )
        if self.trace is not None:
            reads = [rec.y_buf for rec in step.required]
            if step.y_owner in gradients:
                reads.append(f"dY{step.y_owner}")
            if step.has_weight:
                reads.append(f"W{index}")
            writes = [g_buf for owner, g_buf in step.grad_write_candidates
                      if owner in gradients]
            if step.has_weight:
                writes.append(f"dW{index}")
            if workspace is not None:
                writes.append(step.ws_buf)
            self.trace.kernel(
                step.name, self.compute.name, reads=reads, writes=writes,
                layer=index, phase="bwd", start=bwd_start, end=bwd_end,
            )

        # "Any prefetch operation launched during layer(n)'s backward
        # computation is guaranteed to be ready before layer(n-1)'s."
        if launched_prefetch and self.sync_after_prefetch:
            # Label allocation bounded by #offloaded layers, and the
            # stall it names dominates it by orders of magnitude.
            self._stall(f"prefetch-sync {step.name}", index,  # repro: allow(LINT205)
                        cause="prefetch-sync")

        # Release whatever this backward step finished with (Figure 8);
        # the plan precomputed the exact interleaved free order the
        # per-step storage scan used to produce.
        for owner, is_gradient in step.releases:
            allocation = (gradients if is_gradient else device).pop(
                owner, None)
            if allocation is not None:
                self._free(allocation, layer=index, phase="bwd")

        if workspace is not None:
            self._free(workspace, layer=index, phase="bwd")

    def _release_remaining(self) -> None:
        """Free anything still live (e.g. the input batch's storage)."""
        for allocation in list(self.device.values()):
            self._free(allocation, phase="end")
        self.device.clear()
        for allocation in list(self.gradients.values()):
            self._free(allocation, phase="end")
        self.gradients.clear()


def simulate_vdnn(
    network: Network,
    system: SystemConfig,
    policy: TransferPolicy,
    algos: AlgoConfig,
    bounded_prefetch_window: bool = True,
    sync_after_offload: bool = True,
    sync_after_prefetch: bool = True,
    verify: bool = False,
    faults: Optional[FaultSpec] = None,
    fault_seed: int = 0,
    obs: Optional[Instrumentation] = None,
) -> IterationResult:
    """One training iteration under the vDNN memory manager.

    Args:
        network: the DNN to train.
        system: GPU + host + PCIe models.
        policy: which layers offload their input feature maps.
        algos: per-CONV-layer algorithm (and workspace) choices.
        bounded_prefetch_window: disable for the DESIGN.md ablation of
            Figure 10's CONV-bounded search window.
        sync_after_offload: disable for the end-of-layer-sync ablation
            (release then happens at the same point but compute no
            longer waits — an *unsafe* configuration kept for study).
        sync_after_prefetch: disable for the prefetch-guarantee ablation
            of §III-C ("ready before layer(n-1)'s backward") — the
            backward kernel may then read a still-in-flight prefetch,
            the defect HB003 (and statically SP403) exists to catch.
        verify: record a :class:`~repro.analysis.trace.ScheduleTrace` of
            every alloc/free/kernel/transfer/sync on the result, for the
            schedule sanitizer (``repro verify``).  Debug-only: traced
            runs bypass the result cache.
        faults: inject deterministic faults from this
            :class:`~repro.faults.FaultSpec` (None = the perfect
            machine; faulted runs bypass the result cache).
        fault_seed: RNG seed for the fault stream; same
            ``(spec, seed)`` ⇒ bit-identical run and FaultReport.
        obs: record metrics and spans into this
            :class:`~repro.obs.Instrumentation`.  Observation only —
            the run is bit-identical with or without it (the
            differential suite asserts this across the zoo); like
            traced runs, instrumented runs bypass the result cache.

    Returns:
        The :class:`IterationResult`; ``trainable`` reflects whether the
        peak pool usage fits the physical GPU.
    """
    plan = compiled_plan(network, system, algos)
    injector = make_injector(faults, fault_seed, obs=obs)
    sim = _VDNNSimulation(
        network, system, policy, algos, plan,
        bounded_prefetch_window=bounded_prefetch_window,
        sync_after_offload=sync_after_offload,
        sync_after_prefetch=sync_after_prefetch,
        verify=verify,
        faults=injector,
        obs=obs,
    )
    failure: Optional[str] = None
    persistent = sim.allocate_persistent()
    try:
        sim.run_forward()
        sim.run_backward()
    except PinnedMemoryError as error:
        # Host DRAM cannot stage this policy's offload traffic; the
        # configuration is untrainable on this node (partial stats kept).
        failure = f"host pinned memory exhausted: {error}"
    except DMAAbortError as error:
        # A demand fetch exhausted its retries: structured failure, not
        # a hang or silent corruption.
        failure = f"DMA transfer permanently failed: {error}"
    sim.usage.record(sim.timeline.end_time, sim.pool.live_bytes)
    if obs is not None:
        obs.pool_sample(sim.pool.live_bytes, system.gpu.memory_bytes,
                        sim.pool.fragmentation)
        obs.pool_peak(sim.pool.peak_bytes)
        obs.pinned_peak(sim.pinned.peak_bytes)
        obs.prefetch_searches(sim.prefetch_hits, sim.prefetch_misses)
        obs.stream_busy(sim.timeline.span,
                        ((sim.compute.name, sim.compute.busy_seconds),
                         (sim.memory.name, sim.memory.busy_seconds)))
        obs.span("iteration", "phase", 0.0, sim.timeline.end_time,
                 category="phase", network=network.name,
                 policy=policy.describe(), algo=algos.label)

    peak = sim.usage.max_bytes
    total_peak = peak + sim.external_bytes
    if failure is None and total_peak > system.gpu.memory_bytes:
        failure = (
            f"peak usage {total_peak} bytes exceeds GPU capacity "
            f"{system.gpu.memory_bytes} bytes"
        )
    trainable = failure is None
    return IterationResult(
        network_name=network.name,
        policy_label=policy.describe(),
        algo_label=algos.label,
        trainable=trainable,
        failure=failure,
        timeline=sim.timeline,
        usage=sim.usage,
        managed_max_bytes=peak,
        managed_avg_bytes=sim.usage.average_bytes,
        external_bytes=sim.external_bytes,
        persistent_bytes=persistent,
        total_time=sim.timeline.span,
        feature_extraction_time=_feature_extraction_time(
            network, sim.timeline, classifier=plan.classifier_indices),
        offload_bytes=sim.offload_bytes,
        prefetch_bytes=sim.prefetch_bytes,
        pinned_peak_bytes=sim.pinned.peak_bytes,
        compute_stall_seconds=sim.stall_seconds,
        offload_raw_bytes=sim.offload_raw_bytes,
        offloaded_layers=sim.offloaded_layers,
        schedule_trace=sim.trace,
        fault_report=injector.report if injector is not None else None,
    )

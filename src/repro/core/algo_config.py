"""Per-layer convolution-algorithm configuration.

The paper evaluates every policy under two algorithm regimes
(Section V): memory-optimal ``(m)`` — implicit GEMM everywhere, zero
workspace — and performance-optimal ``(p)`` — the fastest applicable
algorithm per layer, workspace be damned.  The dynamic policy then mixes
regimes per layer.  :class:`AlgoConfig` is that per-layer mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..graph.layer import Conv2D, LayerKind
from ..graph.network import Network, NetworkNode
from ..kernels.conv_algos import (
    AlgoProfile,
    memory_optimal_profile,
    next_cheaper_algo,
    performance_optimal_algo,
)


@dataclass
class AlgoConfig:
    """Chosen convolution algorithm (and its workspace) per CONV layer."""

    label: str
    profiles: Dict[int, AlgoProfile] = field(default_factory=dict)

    # -- factories ------------------------------------------------------
    @classmethod
    def memory_optimal(cls, network: Network) -> "AlgoConfig":
        """Implicit GEMM everywhere — the paper's ``(m)`` regime."""
        config = cls(label="m")
        for node in network.conv_layers:
            layer = node.layer
            assert isinstance(layer, Conv2D)
            input_spec = network[node.producers[0]].output_spec
            config.profiles[node.index] = memory_optimal_profile(
                layer, input_spec, node.output_spec
            )
        return config

    @classmethod
    def performance_optimal(
        cls, network: Network, workspace_limit: Optional[int] = None
    ) -> "AlgoConfig":
        """Fastest applicable algorithm per layer — the ``(p)`` regime."""
        config = cls(label="p")
        for node in network.conv_layers:
            layer = node.layer
            assert isinstance(layer, Conv2D)
            input_spec = network[node.producers[0]].output_spec
            config.profiles[node.index] = performance_optimal_algo(
                layer, input_spec, node.output_spec, workspace_limit
            )
        return config

    # -- queries / edits ------------------------------------------------
    def profile(self, node: NetworkNode) -> Optional[AlgoProfile]:
        return self.profiles.get(node.index)

    def workspace_bytes(self, node: NetworkNode) -> int:
        profile = self.profiles.get(node.index)
        return profile.workspace_bytes if profile else 0

    def max_workspace_bytes(self) -> int:
        """Largest single-layer workspace — the baseline's shared WS size."""
        return max((p.workspace_bytes for p in self.profiles.values()), default=0)

    def total_workspace_bytes(self) -> int:
        return sum(p.workspace_bytes for p in self.profiles.values())

    def downgrade(self, network: Network, layer_index: int) -> bool:
        """Swap one layer to the fastest *smaller-workspace* algorithm.

        Implements the vDNN_dyn greedy step: "the given layer's
        convolutional algorithm will be locally downgraded into a less
        performant but more memory-efficient one, until it reaches the
        memory-optimal implicit GEMM" (Section III-C).  Returns False
        when the layer is already at zero workspace.
        """
        node = network[layer_index]
        if node.kind is not LayerKind.CONV:
            raise ValueError(f"layer {layer_index} is not a CONV layer")
        current = self.profiles[layer_index]
        if current.workspace_bytes == 0:
            return False
        layer = node.layer
        assert isinstance(layer, Conv2D)
        input_spec = network[node.producers[0]].output_spec
        cheaper = next_cheaper_algo(
            current.algo, layer, input_spec, node.output_spec
        )
        if cheaper is None:
            return False
        self.profiles[layer_index] = cheaper
        self.label = "dyn"
        return True

    def copy(self) -> "AlgoConfig":
        return AlgoConfig(label=self.label, profiles=dict(self.profiles))

"""Storage-level liveness analysis of one training iteration.

vDNN's decisions are about *storages*, not layers: an in-place ACTV
shares one buffer with its producer CONV, and a fork (GoogLeNet) gives
one buffer several consumer layers.  This module flattens the network's
alias/refcount structure into per-storage facts:

* when the buffer's last **forward** reader runs (the only point where
  offload/release may be initiated — the paper's refcount gate, Fig. 3);
* which layers read it during **backward** (CONV/POOL/LRN read their X,
  ACTV/LRN/POOL read their Y), hence whether it must survive forward at
  all and when backward is done with it;
* the matching **gradient** buffer's lifetime (allocated when the first
  backward consumer writes into it, freed right after the storage
  owner's backward completes — "vDNN immediately frees up a layer's Y
  and dY once this layer's backward computation is complete", Fig. 8).

Both the event-driven simulator and the numpy runtime consume exactly
this analysis, so the performance model and the functional execution can
never disagree about lifetimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..graph.layer import LayerKind
from ..graph.network import Network


@dataclass
class StorageInfo:
    """Liveness facts for one feature-map buffer (and its gradient twin).

    Attributes:
        owner: index of the node that allocates/owns the buffer.
        chain: owner plus every in-place layer aliased onto it,
            in topological order.
        nbytes: buffer size.
        forward_release_at: index of the last forward reader; after that
            layer's forward kernel the buffer may be offloaded/released.
        backward_users: indices of layers whose backward kernels read
            this buffer (as their X or their Y), descending.
        gradient_writers: indices of layers whose backward writes a
            gradient into the twin buffer, descending.  Empty for the
            input batch (no dX is computed for data).
    """

    owner: int
    chain: List[int]
    nbytes: int
    forward_release_at: int
    backward_users: List[int] = field(default_factory=list)
    gradient_writers: List[int] = field(default_factory=list)

    @property
    def needed_backward(self) -> bool:
        return bool(self.backward_users)

    @property
    def first_backward_use(self) -> int:
        """Highest-index backward reader — the first one to run."""
        return self.backward_users[0]

    @property
    def backward_release_after(self) -> int:
        """Lowest-index backward reader — free the buffer after its BWD."""
        return self.backward_users[-1]

    @property
    def needs_gradient(self) -> bool:
        return bool(self.gradient_writers)

    @property
    def gradient_alloc_at(self) -> int:
        """The backward step that first writes the gradient twin."""
        return self.gradient_writers[0]

    @property
    def gradient_release_after(self) -> int:
        """Free the gradient twin after this node's backward (the owner's)."""
        return self.owner


class LivenessAnalysis:
    """Per-storage liveness for one network."""

    def __init__(self, network: Network):
        self.network = network
        self.storages: Dict[int, StorageInfo] = {}
        self._storage_of_node: Dict[int, int] = {}
        self._analyze()

    # ------------------------------------------------------------------
    def _analyze(self) -> None:
        network = self.network
        chains: Dict[int, List[int]] = {}
        for node in network:
            owner = node.storage_index
            chains.setdefault(owner, []).append(node.index)
            self._storage_of_node[node.index] = owner

        for owner, chain in chains.items():
            consumers = sorted(
                {c for idx in chain for c in network[idx].consumers
                 if network[c].storage_index != owner}
            )
            # Last forward reader; the final network output has none and
            # is "read" by the loss right at the forward/backward pivot,
            # which we attribute to the chain's last member.
            forward_release_at = consumers[-1] if consumers else chain[-1]

            backward_users = set()
            for idx in chain:
                if network[idx].layer.backward_needs_y:
                    backward_users.add(idx)
            for c in consumers:
                if network[c].layer.backward_needs_x:
                    backward_users.add(c)

            # Gradient writers: every consumer's backward adds its dX
            # contribution; in-place chain members rewrite it in place.
            # The terminal storage's gradient is written by the loss,
            # modeled as the chain's last member.  The input batch gets
            # no gradient at all.
            gradient_writers: List[int] = []
            if network[owner].kind is not LayerKind.INPUT:
                writers = set(consumers) | {
                    idx for idx in chain[1:]  # in-place members
                }
                if not consumers:
                    writers.add(chain[-1])
                gradient_writers = sorted(writers, reverse=True)
                if not gradient_writers:
                    gradient_writers = [chain[-1]]

            self.storages[owner] = StorageInfo(
                owner=owner,
                chain=list(chain),
                nbytes=network[owner].output_spec.nbytes,
                forward_release_at=forward_release_at,
                backward_users=sorted(backward_users, reverse=True),
                gradient_writers=gradient_writers,
            )

    # ------------------------------------------------------------------
    def storage_of(self, node_index: int) -> StorageInfo:
        """The storage holding node ``node_index``'s output Y."""
        return self.storages[self._storage_of_node[node_index]]

    def input_storages(self, node_index: int) -> List[StorageInfo]:
        """Distinct storages a node reads as its input X."""
        seen: Dict[int, StorageInfo] = {}
        for producer in self.network[node_index].producers:
            info = self.storage_of(producer)
            seen[info.owner] = info
        return list(seen.values())

    def all_storages(self) -> List[StorageInfo]:
        return [self.storages[k] for k in sorted(self.storages)]

    def total_feature_map_bytes(self) -> int:
        """Sum of all distinct feature-map buffers (what Figure 4 plots)."""
        return sum(s.nbytes for s in self.storages.values())

    def max_gradient_bytes(self) -> int:
        """Largest gradient twin — the baseline sizes its two reused
        dY/dX ping-pong buffers to this (Section IV-A)."""
        return max(
            (s.nbytes for s in self.storages.values() if s.needs_gradient),
            default=0,
        )

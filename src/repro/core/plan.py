"""Compiled per-layer execution plans for the simulator core.

Every simulated iteration used to re-derive the same facts layer by
layer: liveness lookups (`all_storages()` scans per backward step —
O(L²) overall), roofline kernel timings, workspace sizes, DMA
durations, offload/release decisions and even the trace buffer names.
None of those depend on anything that changes between runs of the same
``(network, algo-config, hardware)`` point, so this module hoists all
of it into a :class:`CompiledPlan` built once and cached.

The plan deliberately holds **no reference to the network** (only
per-storage records, strings and numbers).  That keeps the cache — a
:class:`weakref.WeakKeyDictionary` keyed by the network — leak-free:
when the last outside reference to a network dies, its plans die with
it.  Policies are applied as an overlay: the per-layer offload
*candidates* (refcount gate: last forward reader + needed backward)
live in the plan, and :meth:`CompiledPlan.offload_indices` resolves a
:class:`~repro.core.policy.TransferPolicy` to the set of trigger layers
that actually offload, cached per policy.

:class:`AlgoConfig` is mutable (``downgrade`` swaps algorithms in
place), so plans are keyed by a content signature of its profiles, not
by identity.
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..graph.layer import LayerKind
from ..graph.network import Network
from ..hw.config import SystemConfig
from ..kernels.latency import LatencyModel
from .algo_config import AlgoConfig
from .liveness import LivenessAnalysis, StorageInfo
from .policy import TransferPolicy


class StorageRecord:
    """One feature-map storage with every derived fact the executor
    needs precomputed: liveness, DMA duration on this link (raw and
    cDMA-compressed), and the tag/buffer strings the allocator and
    schedule trace use."""

    __slots__ = ("info", "owner", "nbytes", "name", "y_buf", "g_buf",
                 "g_tag", "host_tag", "pre_tag", "demand_tag",
                 "dma_seconds", "comp_nbytes", "comp_dma_seconds")

    def __init__(self, info: StorageInfo, name: str, dma_seconds: float,
                 comp_nbytes: int, comp_dma_seconds: float):
        self.info = info
        self.owner = info.owner
        self.nbytes = info.nbytes
        self.name = name
        self.y_buf = f"Y{info.owner}"
        self.g_buf = f"dY{info.owner}"
        self.g_tag = f"dY[{info.owner}]"
        self.host_tag = f"host[{info.owner}]"
        self.pre_tag = f"X[{info.owner}](pre)"
        self.demand_tag = f"X[{info.owner}](demand)"
        self.dma_seconds = dma_seconds
        self.comp_nbytes = comp_nbytes
        self.comp_dma_seconds = comp_dma_seconds


class ForwardStep:
    """Everything one forward layer does, decided ahead of time."""

    __slots__ = ("index", "name", "is_input", "alloc_rec", "y_tag",
                 "y_owner", "ws_bytes", "ws_tag", "ws_buf", "seconds",
                 "dram_nbytes", "offload_candidates", "dead_releases",
                 "trace_reads", "trace_writes")

    def __init__(self, index: int, name: str):
        self.index = index
        self.name = name
        self.is_input = False
        self.alloc_rec: Optional[StorageRecord] = None
        self.y_tag = ""
        self.y_owner = -1
        self.ws_bytes = 0
        self.ws_tag = ""
        self.ws_buf = ""
        self.seconds = 0.0
        self.dram_nbytes = 0
        self.offload_candidates: Tuple[StorageRecord, ...] = ()
        self.dead_releases: Tuple[StorageRecord, ...] = ()
        self.trace_reads: Tuple[str, ...] = ()
        self.trace_writes: Tuple[str, ...] = ()


class BackwardStep:
    """Everything one backward layer does, decided ahead of time.

    ``releases`` is the interleaved (owner, is_gradient) free order the
    refcount walk used to produce by scanning ``all_storages()`` per
    step — precomputing it removes the O(L²) scans while preserving the
    exact pool free order (free order shapes the pool's hole structure,
    hence later offsets)."""

    __slots__ = ("index", "name", "required", "grad_allocs", "ws_bytes",
                 "ws_tag", "ws_buf", "seconds", "dram_nbytes", "releases",
                 "y_owner", "has_weight", "grad_write_candidates")

    def __init__(self, index: int, name: str):
        self.index = index
        self.name = name
        self.required: Tuple[StorageRecord, ...] = ()
        self.grad_allocs: Tuple[StorageRecord, ...] = ()
        self.ws_bytes = 0
        self.ws_tag = ""
        self.ws_buf = ""
        self.seconds = 0.0
        self.dram_nbytes = 0
        self.releases: Tuple[Tuple[int, bool], ...] = ()
        self.y_owner = -1
        self.has_weight = False
        self.grad_write_candidates: Tuple[Tuple[int, str], ...] = ()


class PersistentAlloc:
    """One feature-extraction layer's weight + weight-gradient blocks."""

    __slots__ = ("index", "nbytes", "w_tag", "dw_tag", "w_buf", "dw_buf")

    def __init__(self, index: int, nbytes: int, name: str):
        self.index = index
        self.nbytes = nbytes
        self.w_tag = f"W[{name}]"
        self.dw_tag = f"dW[{name}]"
        self.w_buf = f"W{index}"
        self.dw_buf = f"dW{index}"


class CompiledPlan:
    """Per-(network, algos, gpu, pcie) execution plan.

    Policy-independent: offload *candidates* are per forward step, and
    the per-policy trigger set comes from :meth:`offload_indices`.
    """

    __slots__ = ("network_name", "forward", "backward", "persistent",
                 "external_bytes", "persistent_bytes", "classifier_indices",
                 "records", "baseline_breakdown", "_offload_sets")

    def __init__(self, network: Network, system: SystemConfig,
                 algos: AlgoConfig):
        latency = LatencyModel(system.gpu)
        liveness = LivenessAnalysis(network)
        pcie = system.pcie

        self.network_name = network.name

        # ReLU-sparsity compressibility (cDMA): a storage compresses if
        # any layer writing it — the owner or an in-place ACTV rewriting
        # the same buffer — is a ReLU output.
        relu_owners = frozenset(
            node.storage_index for node in network
            if node.kind is LayerKind.ACTV)
        comp = system.compression
        span = max(1, len(network) - 1)
        records: Dict[int, StorageRecord] = {}
        for info in liveness.all_storages():
            wire = comp.compressed_bytes(
                info.nbytes, info.owner in relu_owners, info.owner / span)
            records[info.owner] = StorageRecord(
                info, network[info.owner].name, pcie.dma_time(info.nbytes),
                wire, comp.engine_latency + pcie.dma_time(wire))
        self.records = records

        # -- persistent weights ----------------------------------------
        persistent: List[PersistentAlloc] = []
        external = 0
        total = 0
        for node in network:
            if not node.weight_bytes:
                continue
            if node.is_feature_extraction:
                persistent.append(PersistentAlloc(
                    node.index, node.weight_bytes, node.name))
            else:
                external += 2 * node.weight_bytes
            total += 2 * node.weight_bytes
        self.persistent = tuple(persistent)
        self.external_bytes = external
        self.persistent_bytes = total
        self.classifier_indices = frozenset(
            n.index for n in network.classifier_nodes)

        # -- forward steps ---------------------------------------------
        forward: List[ForwardStep] = []
        for index in network.forward_schedule():
            node = network[index]
            step = ForwardStep(index, node.name)
            own = liveness.storage_of(index)
            step.y_owner = own.owner
            if not node.in_place:
                step.alloc_rec = records[own.owner]
                step.y_tag = f"Y[{node.name}]"
            if node.kind is LayerKind.INPUT:
                step.is_input = True
                forward.append(step)
                continue
            step.ws_bytes = algos.workspace_bytes(node)
            if step.ws_bytes:
                step.ws_tag = f"WS[{node.name}]"
                step.ws_buf = f"WSf{index}"
            timing = latency.forward(network, node, algos.profile(node))
            step.seconds = timing.seconds
            step.dram_nbytes = int(timing.dram_bytes)

            inputs = liveness.input_storages(index)
            step.offload_candidates = tuple(
                records[s.owner] for s in inputs
                if s.forward_release_at == index and s.needed_backward)
            step.dead_releases = tuple(
                records[s.owner] for s in inputs
                if s.forward_release_at == index and not s.needed_backward)

            reads = [records[s.owner].y_buf for s in inputs]
            if node.weight_bytes and node.is_feature_extraction:
                reads.append(f"W{index}")
            writes = [records[own.owner].y_buf]
            if step.ws_bytes:
                writes.append(step.ws_buf)
            step.trace_reads = tuple(reads)
            step.trace_writes = tuple(writes)
            forward.append(step)
        self.forward = tuple(forward)

        # -- backward steps --------------------------------------------
        all_storages = liveness.all_storages()
        backward: List[BackwardStep] = []
        for index in network.backward_schedule():
            node = network[index]
            step = BackwardStep(index, node.name)
            own = liveness.storage_of(index)
            step.y_owner = own.owner
            step.has_weight = bool(
                node.weight_bytes and node.is_feature_extraction)

            required: Dict[int, StorageInfo] = {}
            if node.layer.backward_needs_x:
                for storage in liveness.input_storages(index):
                    required[storage.owner] = storage
            if node.layer.backward_needs_y:
                required[own.owner] = own
            step.required = tuple(records[o] for o in required)

            step.grad_allocs = tuple(
                records[s.owner] for s in all_storages
                if s.needs_gradient and s.gradient_alloc_at == index)

            step.ws_bytes = algos.workspace_bytes(node)
            if step.ws_bytes:
                step.ws_tag = f"WS[{node.name}]"
                step.ws_buf = f"WSb{index}"
            timing = latency.backward(network, node, algos.profile(node))
            step.seconds = timing.seconds
            step.dram_nbytes = int(timing.dram_bytes)

            releases: List[Tuple[int, bool]] = []
            for storage in all_storages:
                if storage.needed_backward \
                        and storage.backward_release_after == index:
                    releases.append((storage.owner, False))
                if storage.needs_gradient \
                        and storage.gradient_release_after == index:
                    releases.append((storage.owner, True))
            step.releases = tuple(releases)

            step.grad_write_candidates = tuple(
                (s.owner, records[s.owner].g_buf)
                for s in liveness.input_storages(index)
                if s.owner != own.owner)
            backward.append(step)
        self.backward = tuple(backward)

        # -- baseline breakdown (policy-independent) -------------------
        weights = network.total_weight_bytes()
        feature_maps = liveness.total_feature_map_bytes()
        gradient_maps = 2 * liveness.max_gradient_bytes()
        workspace = algos.max_workspace_bytes()
        self.baseline_breakdown = {
            "weights": weights,
            "weight_gradients": weights,
            "feature_maps": feature_maps,
            "gradient_maps": gradient_maps,
            "workspace": workspace,
            "total": weights * 2 + feature_maps + gradient_maps + workspace,
        }

        self._offload_sets: Dict[TransferPolicy, FrozenSet[int]] = {}

    def offload_indices(self, policy: TransferPolicy,
                        network: Network) -> FrozenSet[int]:
        """Trigger layers whose offload candidates this policy offloads."""
        cached = self._offload_sets.get(policy)
        if cached is None:
            cached = frozenset(
                step.index for step in self.forward
                if step.offload_candidates
                and policy.wants_offload(network[step.index]))
            self._offload_sets[policy] = cached
        return cached

    # -- invariant-relevant views (static verifier) --------------------
    # These flip the per-step schedules into per-storage maps so
    # :mod:`repro.analysis.static_plan` can audit each allocation's
    # whole lifecycle in one lookup.  Verification-path only: built on
    # demand, never cached, never touched by the executor's hot loop.

    def release_schedule(self) -> Dict[int, List[Tuple[int, bool]]]:
        """owner -> [(backward step index, is_gradient), ...] in the
        order the backward pass would free them."""
        schedule: Dict[int, List[Tuple[int, bool]]] = {}
        for step in self.backward:
            for owner, is_gradient in step.releases:
                schedule.setdefault(owner, []).append(
                    (step.index, is_gradient))
        return schedule

    def dead_release_sites(self) -> Dict[int, List[int]]:
        """owner -> forward step indices that free it without offload."""
        sites: Dict[int, List[int]] = {}
        for step in self.forward:
            for rec in step.dead_releases:
                sites.setdefault(rec.owner, []).append(step.index)
        return sites

    def offload_candidate_sites(self) -> Dict[int, List[int]]:
        """owner -> forward step indices that may offload it."""
        sites: Dict[int, List[int]] = {}
        for step in self.forward:
            for rec in step.offload_candidates:
                sites.setdefault(rec.owner, []).append(step.index)
        return sites

    def grad_alloc_sites(self) -> Dict[int, List[int]]:
        """owner -> backward step indices that allocate its gradient."""
        sites: Dict[int, List[int]] = {}
        for step in self.backward:
            for rec in step.grad_allocs:
                sites.setdefault(rec.owner, []).append(step.index)
        return sites


def _algo_signature(algos: AlgoConfig) -> tuple:
    """Content signature of a (mutable) AlgoConfig's profiles."""
    return tuple(sorted(
        (index, profile.algo, profile.workspace_bytes,
         profile.time_multiplier)
        for index, profile in algos.profiles.items()))


#: network -> {(gpu, pcie, compression, algo signature) -> CompiledPlan}.
#: Plans hold no network reference, so entries die with their network.
_PLANS: "weakref.WeakKeyDictionary[Network, Dict[tuple, CompiledPlan]]" = \
    weakref.WeakKeyDictionary()


def compiled_plan(network: Network, system: SystemConfig,
                  algos: AlgoConfig) -> CompiledPlan:
    """The cached plan for this (network, hardware, algo-config) point."""
    key = (system.gpu, system.pcie, system.compression,
           _algo_signature(algos))
    table = _PLANS.get(network)
    if table is None:
        table = {}
        _PLANS[network] = table
    plan = table.get(key)
    if plan is None:
        plan = CompiledPlan(network, system, algos)
        table[key] = plan
    return plan

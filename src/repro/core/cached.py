"""Cache-aware entry points for the three iteration simulators.

Every caller that can hit the content-addressed cache — ``evaluate``,
the vDNN_dyn profiling passes, the multi-tenant admission ladder and the
parallel sweep executor — goes through these wrappers so that one
(network, system, policy, algos) point maps to exactly one cache key no
matter which layer asks for it.  N co-tenant jobs over the same network
therefore reuse one simulation, and a warmed dyn ladder replays its
profiling passes as cache hits.
"""

from __future__ import annotations

from typing import Optional

from ..graph.network import Network
from ..hw.config import SystemConfig
from ..perf.cache import cache_enabled, get_cache
from ..perf.fingerprint import fingerprint_point
from .algo_config import AlgoConfig
from .executor import IterationResult, simulate_baseline, simulate_vdnn
from .policy import TransferPolicy
from .recompute import simulate_recompute


def baseline_key(network: Network, system: SystemConfig,
                 algos: AlgoConfig) -> str:
    return fingerprint_point("baseline", network, system, algos=algos)


def vdnn_key(network: Network, system: SystemConfig,
             policy: TransferPolicy, algos: AlgoConfig) -> str:
    return fingerprint_point("vdnn", network, system,
                             policy=policy, algos=algos)


def recompute_key(network: Network, system: SystemConfig, algos: AlgoConfig,
                  segment_count: Optional[int] = None) -> str:
    return fingerprint_point("recompute", network, system, algos=algos,
                             extra={"segment_count": segment_count})


def dynamic_key(network: Network, system: SystemConfig) -> str:
    return fingerprint_point("dynamic", network, system)


def _through_cache(key: str, compute, use_cache: Optional[bool]):
    if not cache_enabled(use_cache):
        return compute()
    return get_cache().get_or_compute(key, compute)


def cached_baseline(
    network: Network,
    system: SystemConfig,
    algos: AlgoConfig,
    use_cache: Optional[bool] = None,
) -> IterationResult:
    """:func:`simulate_baseline` through the content-addressed cache."""
    return _through_cache(
        baseline_key(network, system, algos),
        lambda: simulate_baseline(network, system, algos),
        use_cache,
    )


def cached_vdnn(
    network: Network,
    system: SystemConfig,
    policy: TransferPolicy,
    algos: AlgoConfig,
    use_cache: Optional[bool] = None,
) -> IterationResult:
    """:func:`simulate_vdnn` through the content-addressed cache."""
    return _through_cache(
        vdnn_key(network, system, policy, algos),
        lambda: simulate_vdnn(network, system, policy, algos),
        use_cache,
    )


def cached_recompute(
    network: Network,
    system: SystemConfig,
    algos: AlgoConfig,
    segment_count: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> IterationResult:
    """:func:`simulate_recompute` through the content-addressed cache."""
    return _through_cache(
        recompute_key(network, system, algos, segment_count),
        lambda: simulate_recompute(network, system, algos, segment_count),
        use_cache,
    )

"""Roofline latency model for layer kernels on a modeled GPU.

Each kernel's runtime is the larger of its math time (FLOPs over the
GPU's sustained FLOP rate, scaled by the chosen convolution algorithm's
time multiplier) and its memory time (DRAM bytes over sustained
bandwidth), plus a fixed launch overhead.  The model is calibrated so
VGG-16 per-layer forward latencies land in the tens-of-milliseconds range
of the paper's Figure 6 and a full VGG-16 (64) iteration takes on the
order of a second (the paper quotes a ~1200 ms reuse distance for the
first layer).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from ..graph.network import Network, NetworkNode
from ..hw.gpu import GPUSpec
from .conv_algos import AlgoProfile
from .flops import KernelCost, backward_cost, forward_cost

#: Fixed cost of launching one kernel (driver + scheduling), seconds.
KERNEL_LAUNCH_OVERHEAD = 10e-6


@dataclass(frozen=True)
class KernelTiming:
    """Latency plus the DRAM traffic behind it (for Figure 13)."""

    seconds: float
    dram_bytes: float

    @property
    def dram_bandwidth(self) -> float:
        """Achieved DRAM bytes/s during this kernel."""
        return self.dram_bytes / self.seconds if self.seconds > 0 else 0.0


@lru_cache(maxsize=65536)
def _roofline(
    flops: float,
    dram_bytes: float,
    time_multiplier: float,
    effective_flops: float,
    effective_bandwidth: float,
) -> KernelTiming:
    """Pure roofline formula, memoized on its scalar inputs.

    A policy sweep evaluates the same (layer cost, GPU) pairs hundreds of
    times — once per policy x algorithm x probe — so the hit rate is high.
    """
    math_time = flops / effective_flops * time_multiplier
    memory_time = dram_bytes / effective_bandwidth
    return KernelTiming(
        seconds=max(math_time, memory_time) + KERNEL_LAUNCH_OVERHEAD,
        dram_bytes=dram_bytes,
    )


class LatencyModel:
    """Computes per-layer kernel timings for one GPU."""

    def __init__(self, gpu: GPUSpec):
        self.gpu = gpu

    # ------------------------------------------------------------------
    def _input_spec(self, network: Network, node: NetworkNode):
        if node.producers:
            return network[node.producers[0]].output_spec
        return node.output_spec

    def _roofline(self, cost: KernelCost, time_multiplier: float) -> KernelTiming:
        return _roofline(
            cost.flops,
            cost.dram_bytes,
            time_multiplier,
            self.gpu.effective_flops,
            self.gpu.effective_bandwidth,
        )

    # ------------------------------------------------------------------
    def forward(
        self,
        network: Network,
        node: NetworkNode,
        algo: Optional[AlgoProfile] = None,
    ) -> KernelTiming:
        """Forward-kernel timing; ``algo`` applies to CONV layers only."""
        cost = forward_cost(node, self._input_spec(network, node))
        multiplier = algo.time_multiplier if algo is not None else 1.0
        return self._roofline(cost, multiplier)

    def backward(
        self,
        network: Network,
        node: NetworkNode,
        algo: Optional[AlgoProfile] = None,
    ) -> KernelTiming:
        """Backward-kernel timing (dX + dW kernels for CONV/FC)."""
        cost = backward_cost(node, self._input_spec(network, node))
        multiplier = algo.time_multiplier if algo is not None else 1.0
        return self._roofline(cost, multiplier)

    def iteration_compute_time(
        self,
        network: Network,
        algos: Optional[dict] = None,
        feature_extraction_only: bool = False,
    ) -> float:
        """Pure compute time of one training iteration, no memory manager.

        This is the paper's *oracular baseline*: "configuring all CONV
        layers with the fastest algorithms and evaluating the latencies
        of each layer individually", then accumulating (Section V-C).

        Args:
            network: the DNN.
            algos: optional ``{layer index: AlgoProfile}`` for CONV layers.
            feature_extraction_only: when True, only feature-extraction
                layers are accumulated — the paper's performance figures
                "only compare the latencies incurred in the feature
                extraction layers".
        """
        algos = algos or {}
        total = 0.0
        for index in network.forward_schedule():
            node = network[index]
            if feature_extraction_only and not node.is_feature_extraction:
                continue
            total += self.forward(network, node, algos.get(index)).seconds
        for index in network.backward_schedule():
            node = network[index]
            if feature_extraction_only and not node.is_feature_extraction:
                continue
            total += self.backward(network, node, algos.get(index)).seconds
        return total

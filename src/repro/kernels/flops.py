"""Arithmetic and memory-traffic counts per layer and direction.

The roofline latency model needs, for each layer's forward and backward
kernels, (a) the floating-point operation count and (b) the bytes of
device-DRAM traffic.  Counts use the standard conventions:

* CONV forward: ``2 * N * K * C * kh * kw * oh * ow`` FLOPs (multiply +
  accumulate).  Backward runs two kernels of the same cost — data
  gradient (dX) and weight gradient (dW) — so backward ~= 2x forward.
* FC is a GEMM: ``2 * N * in * out`` forward; 2x backward.
* ACTV / POOL / LRN are bandwidth bound; their FLOPs are a few ops per
  element and never dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..graph.layer import (
    Conv2D,
    FullyConnected,
    LayerKind,
    LRN,
    Pool2D,
)
from ..graph.network import NetworkNode


@dataclass(frozen=True)
class KernelCost:
    """FLOPs and DRAM bytes for one kernel launch."""

    flops: float
    dram_bytes: float

    def __add__(self, other: "KernelCost") -> "KernelCost":
        return KernelCost(self.flops + other.flops, self.dram_bytes + other.dram_bytes)


@lru_cache(maxsize=65536)
def _gemm_cost(flops: float, dram_bytes: float) -> KernelCost:
    """Memoized KernelCost constructor for the math-kernel (CONV/FC) paths.

    The counts themselves are one multiplication, but sweeps recompute
    the same layer costs thousands of times; interning the results keeps
    each distinct cost a single shared immutable object.
    """
    return KernelCost(flops, dram_bytes)


def forward_cost(node: NetworkNode, input_spec) -> KernelCost:
    """Cost of the layer's forward kernel."""
    out = node.output_spec
    kind = node.kind

    if kind is LayerKind.CONV:
        layer = node.layer
        assert isinstance(layer, Conv2D)
        n, k, oh, ow = out.shape
        c = input_spec.shape[1]
        flops = 2.0 * n * k * c * layer.kernel * layer.kernel * oh * ow
        dram = input_spec.nbytes + out.nbytes + node.weight_tensor_bytes
        return _gemm_cost(flops, dram)

    if kind is LayerKind.FC:
        n = out.batch
        in_features = input_spec.count // input_spec.batch
        out_features = out.shape[1]
        flops = 2.0 * n * in_features * out_features
        dram = input_spec.nbytes + out.nbytes + node.weight_tensor_bytes
        return _gemm_cost(flops, dram)

    if kind is LayerKind.POOL:
        layer = node.layer
        assert isinstance(layer, Pool2D)
        flops = float(out.count) * layer.kernel * layer.kernel
        dram = input_spec.nbytes + out.nbytes
        return KernelCost(flops, dram)

    if kind is LayerKind.LRN:
        layer = node.layer
        assert isinstance(layer, LRN)
        flops = float(out.count) * (2 * layer.local_size + 4)
        dram = input_spec.nbytes + out.nbytes
        return KernelCost(flops, dram)

    if kind in (LayerKind.ACTV, LayerKind.DROPOUT, LayerKind.SOFTMAX):
        # In-place element-wise: read + write each element once.
        return KernelCost(float(out.count) * 4, 2.0 * out.nbytes)

    if kind is LayerKind.CONCAT:
        # Pure device-to-device copy of every input into the output.
        return KernelCost(0.0, 2.0 * out.nbytes)

    if kind is LayerKind.SLICE:
        # Strided copy of the selected channel range.
        return KernelCost(0.0, 2.0 * out.nbytes)

    if kind is LayerKind.ADD:
        # Read every branch, write the sum.
        branches = max(len(node.producers), 2)
        return KernelCost(float(out.count) * (branches - 1),
                          (branches + 1.0) * out.nbytes)

    if kind is LayerKind.MUL:
        # Read both operands, write the product.
        return KernelCost(float(out.count), 3.0 * out.nbytes)

    if kind is LayerKind.BN:
        # Two reduction passes (mean, var) + normalize: ~8 ops/element.
        return KernelCost(float(out.count) * 8, 2.0 * out.nbytes)

    if kind is LayerKind.INPUT:
        return KernelCost(0.0, 0.0)

    raise ValueError(f"unknown layer kind {kind}")


def backward_cost(node: NetworkNode, input_spec) -> KernelCost:
    """Cost of the layer's backward kernel(s)."""
    kind = node.kind
    out = node.output_spec

    if kind is LayerKind.CONV:
        fwd = forward_cost(node, input_spec)
        # dX kernel + dW kernel, each reading dY and one of (W, X).
        return KernelCost(2.0 * fwd.flops, 2.0 * fwd.dram_bytes)

    if kind is LayerKind.FC:
        fwd = forward_cost(node, input_spec)
        return KernelCost(2.0 * fwd.flops, 2.0 * fwd.dram_bytes)

    if kind is LayerKind.POOL:
        fwd = forward_cost(node, input_spec)
        # Backward scatters dY into dX, reading X and Y for max pooling.
        return KernelCost(fwd.flops, fwd.dram_bytes + out.nbytes)

    if kind is LayerKind.LRN:
        fwd = forward_cost(node, input_spec)
        return KernelCost(2.0 * fwd.flops, fwd.dram_bytes + out.nbytes)

    if kind in (LayerKind.ACTV, LayerKind.DROPOUT, LayerKind.SOFTMAX):
        return KernelCost(float(out.count) * 4, 3.0 * out.nbytes)  # Y, dY, dX

    if kind is LayerKind.CONCAT:
        return KernelCost(0.0, 2.0 * out.nbytes)

    if kind is LayerKind.SLICE:
        # Scatter dY back into the selected range.
        return KernelCost(0.0, 2.0 * out.nbytes)

    if kind is LayerKind.ADD:
        # dY fans out unchanged to every branch.
        branches = max(len(node.producers), 2)
        return KernelCost(0.0, (branches + 1.0) * out.nbytes)

    if kind is LayerKind.MUL:
        # dA = dY * B and dB = dY * A: re-read both operands.
        return KernelCost(2.0 * out.count, 5.0 * out.nbytes)

    if kind is LayerKind.BN:
        # Reductions for dgamma/dbeta plus the dX recombination,
        # re-reading X to rebuild x-hat: ~12 ops/element.
        return KernelCost(float(out.count) * 12, 3.0 * out.nbytes)

    if kind is LayerKind.INPUT:
        return KernelCost(0.0, 0.0)

    raise ValueError(f"unknown layer kind {kind}")


def is_compute_bound(node: NetworkNode) -> bool:
    """CONV and FC are math kernels; everything else streams memory."""
    return node.kind in (LayerKind.CONV, LayerKind.FC)

"""Model of cuDNN 4.0's six convolution algorithms.

The paper's memory/performance trade-off hinges on the fact that cuDNN
exposes multiple convolution algorithms with very different *workspace*
(WS) requirements and speeds (Section II-B, footnote 2):

* ``IMPLICIT_GEMM`` needs **no** workspace — the memory-optimal ``(m)``
  configuration uses it everywhere;
* precomputed-index implicit GEMM and explicit GEMM need modest
  workspaces;
* FFT-based algorithms are the fastest for stride-1 convolutions but
  "incur larger memory allocations because of the additional data
  structures required to store the feature maps transformed into
  frequency domain" — these dominate the performance-optimal ``(p)``
  configurations.

Workspace formulas follow the cuDNN documentation's structure: explicit
GEMM lowers one image at a time (im2col buffer), FFT transforms X, W and Y
into padded frequency planes, and tiled FFT does the same over 32x32
tiles.  Speeds are expressed as multipliers over the roofline time; the
values are calibrated to published cuDNN-4-on-Maxwell benchmarks
(convnet-benchmarks) and only their *ordering* matters for the paper's
conclusions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from ..graph.layer import Conv2D
from ..graph.tensor import FP32_BYTES, TensorSpec


class ConvAlgo(enum.Enum):
    """The six cuDNN (v4) convolution algorithms, in workspace order."""

    IMPLICIT_GEMM = "implicit_gemm"
    IMPLICIT_PRECOMP_GEMM = "implicit_precomp_gemm"
    GEMM = "gemm"
    DIRECT = "direct"
    FFT_TILING = "fft_tiling"
    FFT = "fft"


#: The algorithm the memory-optimal (m) configuration uses everywhere:
#: "implicit GEMM requires the least memory allocation as no additional
#: workspace is needed".
MEMORY_OPTIMAL_ALGO = ConvAlgo.IMPLICIT_GEMM

#: Time multiplier applied to the ideal roofline latency.  Lower is
#: faster.  FFT variants beat GEMM variants for the stride-1 3x3/5x5
#: convolutions that dominate the studied networks.
_TIME_MULTIPLIER = {
    ConvAlgo.IMPLICIT_GEMM: 1.30,
    ConvAlgo.IMPLICIT_PRECOMP_GEMM: 1.10,
    ConvAlgo.GEMM: 1.18,
    ConvAlgo.DIRECT: 1.65,
    ConvAlgo.FFT_TILING: 0.72,
    ConvAlgo.FFT: 0.62,
}

_FFT_TILE = 32


@dataclass(frozen=True)
class AlgoProfile:
    """One algorithm's cost on one specific convolution layer.

    This is what cuDNN's ``cudnnFindConvolutionForwardAlgorithm`` returns
    and what the vDNN_dyn profiling passes consume: the algorithm, its
    workspace requirement in bytes, and its relative speed.
    """

    algo: ConvAlgo
    workspace_bytes: int
    time_multiplier: float


def _fft_dims(h: int, w: int, kernel: int) -> tuple:
    """Padded FFT plane extents (next even size >= H + kernel - 1)."""
    fh, fw = h + kernel - 1, w + kernel - 1
    return fh + (fh % 2), fw + (fw % 2)


@lru_cache(maxsize=4096)
def _applicable(algo: ConvAlgo, kernel: int, stride: int) -> bool:
    if algo in (ConvAlgo.FFT, ConvAlgo.FFT_TILING):
        if stride != 1:
            return False
        if algo is ConvAlgo.FFT_TILING and kernel > _FFT_TILE:
            return False
    return True


def algo_applicable(algo: ConvAlgo, layer: Conv2D) -> bool:
    """Whether cuDNN supports this algorithm for the layer's geometry."""
    return _applicable(algo, layer.kernel, layer.stride)


@lru_cache(maxsize=16384)
def _workspace_bytes(
    algo: ConvAlgo,
    kernel: int,
    out_channels: int,
    input_spec: TensorSpec,
    output_spec: TensorSpec,
) -> int:
    n, c, h, w = input_spec.shape
    k = out_channels
    _, _, oh, ow = output_spec.shape

    if algo in (ConvAlgo.IMPLICIT_GEMM, ConvAlgo.DIRECT):
        return 0

    if algo is ConvAlgo.IMPLICIT_PRECOMP_GEMM:
        # Precomputed input-index tiles: one int per (output pixel, tap).
        return oh * ow * kernel * kernel * FP32_BYTES

    if algo is ConvAlgo.GEMM:
        # im2col lowering of one image: (C*kh*kw) x (oh*ow) matrix of
        # input-precision elements.
        return c * kernel * kernel * oh * ow * input_spec.dtype_bytes

    complex_bytes = 2 * input_spec.dtype_bytes
    if algo is ConvAlgo.FFT:
        fh, fw = _fft_dims(h, w, kernel)
        planes = n * c + n * k + c * k  # X^, Y^ and W^ frequency planes
        return planes * fh * (fw // 2 + 1) * complex_bytes

    # FFT_TILING: same three transforms but over 32x32 tiles, so the
    # frequency planes are tile-sized and the X^/Y^ terms stay bounded.
    fh, fw = _fft_dims(_FFT_TILE, _FFT_TILE, kernel)
    tiles_h = -(-h // _FFT_TILE)
    tiles_w = -(-w // _FFT_TILE)
    batch_planes = min(n, 32) * c + min(n, 32) * k  # processed in chunks
    planes = batch_planes * tiles_h * tiles_w + c * k
    return planes * fh * (fw // 2 + 1) * complex_bytes


def workspace_bytes(
    algo: ConvAlgo, layer: Conv2D, input_spec: TensorSpec, output_spec: TensorSpec
) -> int:
    """Workspace requirement of ``algo`` on this layer, in bytes."""
    if not algo_applicable(algo, layer):
        raise ValueError(
            f"{algo.value} is not applicable to layer {layer.name!r} "
            f"(kernel={layer.kernel}, stride={layer.stride})"
        )
    return _workspace_bytes(algo, layer.kernel, layer.out_channels, input_spec, output_spec)


@lru_cache(maxsize=4096)
def _time_multiplier(algo: ConvAlgo, kernel: int) -> float:
    mult = _TIME_MULTIPLIER[algo]
    if algo in (ConvAlgo.FFT, ConvAlgo.FFT_TILING) and kernel == 1:
        mult = 1.20  # transforms buy nothing for pointwise convolutions
    return mult


def time_multiplier(algo: ConvAlgo, layer: Conv2D) -> float:
    """Relative runtime of ``algo`` vs. the roofline ideal (lower=faster).

    FFT's advantage shrinks for 1x1 kernels (no arithmetic saving) and
    for very small feature maps where transform overhead dominates.
    """
    return _time_multiplier(algo, layer.kernel)


@lru_cache(maxsize=16384)
def _profile_algorithms(
    kernel: int,
    stride: int,
    out_channels: int,
    input_spec: TensorSpec,
    output_spec: TensorSpec,
) -> Tuple[AlgoProfile, ...]:
    profiles = [
        AlgoProfile(
            algo=algo,
            workspace_bytes=_workspace_bytes(algo, kernel, out_channels, input_spec, output_spec),
            time_multiplier=_time_multiplier(algo, kernel),
        )
        for algo in ConvAlgo
        if _applicable(algo, kernel, stride)
    ]
    profiles.sort(key=lambda p: (p.time_multiplier, p.workspace_bytes))
    return tuple(profiles)


def profile_algorithms(
    layer: Conv2D, input_spec: TensorSpec, output_spec: TensorSpec
) -> List[AlgoProfile]:
    """All applicable algorithms for a layer, fastest first.

    Mirrors cuDNN's find-algorithm API: the caller gets every candidate
    with its workspace size and can pick under a memory budget.
    Profiles are memoized on the layer geometry — every VGG-16 batch-64
    probe in a sweep reuses one computed table.
    """
    return list(
        _profile_algorithms(
            layer.kernel, layer.stride, layer.out_channels, input_spec, output_spec
        )
    )


def performance_optimal_algo(
    layer: Conv2D,
    input_spec: TensorSpec,
    output_spec: TensorSpec,
    workspace_limit: Optional[int] = None,
) -> AlgoProfile:
    """The fastest applicable algorithm, optionally under a WS budget."""
    for profile in profile_algorithms(layer, input_spec, output_spec):
        if workspace_limit is None or profile.workspace_bytes <= workspace_limit:
            return profile
    raise ValueError(
        f"no convolution algorithm fits workspace limit {workspace_limit} "
        f"on layer {layer.name!r}"
    )


def memory_optimal_profile(
    layer: Conv2D, input_spec: TensorSpec, output_spec: TensorSpec
) -> AlgoProfile:
    """The zero-workspace implicit-GEMM profile."""
    return AlgoProfile(
        algo=MEMORY_OPTIMAL_ALGO,
        workspace_bytes=0,
        time_multiplier=time_multiplier(MEMORY_OPTIMAL_ALGO, layer),
    )


def next_cheaper_algo(
    current: ConvAlgo,
    layer: Conv2D,
    input_spec: TensorSpec,
    output_spec: TensorSpec,
) -> Optional[AlgoProfile]:
    """The fastest algorithm with strictly less workspace than ``current``.

    This is the "locally downgraded into a less performant but more
    memory-efficient one" step of the vDNN_dyn greedy pass (Section
    III-C, profiling pass 3).  Returns None when ``current`` is already
    implicit GEMM (workspace zero).
    """
    current_ws = workspace_bytes(current, layer, input_spec, output_spec)
    cheaper = [
        p for p in profile_algorithms(layer, input_spec, output_spec)
        if p.workspace_bytes < current_ws
    ]
    return cheaper[0] if cheaper else None

"""cuDNN-style kernel models: conv algorithms, FLOP counts, latencies."""

from .conv_algos import (
    AlgoProfile,
    ConvAlgo,
    MEMORY_OPTIMAL_ALGO,
    algo_applicable,
    memory_optimal_profile,
    next_cheaper_algo,
    performance_optimal_algo,
    profile_algorithms,
    time_multiplier,
    workspace_bytes,
)
from .flops import KernelCost, backward_cost, forward_cost, is_compute_bound
from .latency import KERNEL_LAUNCH_OVERHEAD, KernelTiming, LatencyModel

__all__ = [
    "AlgoProfile",
    "ConvAlgo",
    "KERNEL_LAUNCH_OVERHEAD",
    "KernelCost",
    "KernelTiming",
    "LatencyModel",
    "MEMORY_OPTIMAL_ALGO",
    "algo_applicable",
    "backward_cost",
    "forward_cost",
    "is_compute_bound",
    "memory_optimal_profile",
    "next_cheaper_algo",
    "performance_optimal_algo",
    "profile_algorithms",
    "time_multiplier",
    "workspace_bytes",
]

"""Host (CPU) memory model.

vDNN offloads feature maps into *pinned* host memory allocated with
``cudaMallocHost``.  The host side only needs capacity accounting: the
paper's testbed is an Intel i7-5930K with 64 GB of DDR4 (Section IV-B),
and Figure 15 reports how many GB of a very deep network's allocations
end up resident on the CPU side.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HostSpec:
    """Static description of host memory."""

    name: str = "Intel i7-5930K, 64 GB DDR4"
    memory_bytes: int = 64 * (1 << 30)
    #: Fraction of host DRAM the runtime may pin.  Pinning the whole of
    #: host memory would deadlock the OS; production runtimes cap it.
    #: Figure 15 has VGG-416 placing ~60 GB of its 67 GB of allocations
    #: in the 64 GB host, so the paper's runtime pins nearly all of it.
    max_pinned_fraction: float = 0.95

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError("host memory capacity must be positive")
        if not 0 < self.max_pinned_fraction <= 1:
            raise ValueError("max_pinned_fraction must be in (0, 1]")

    @property
    def max_pinned_bytes(self) -> int:
        return int(self.memory_bytes * self.max_pinned_fraction)


#: The paper's host.
I7_5930K = HostSpec()

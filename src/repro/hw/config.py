"""System configuration: GPU + host + interconnect as one object."""

from __future__ import annotations

from dataclasses import dataclass, field

from .compression import CDMA_ENGINE, CompressionModel
from .gpu import GPUSpec, TITAN_X, oracular
from .host import HostSpec, I7_5930K
from .pcie import PCIeLink, PCIE_GEN3


@dataclass(frozen=True)
class SystemConfig:
    """The full node topology of Section IV-B."""

    gpu: GPUSpec = field(default_factory=lambda: TITAN_X)
    host: HostSpec = field(default_factory=lambda: I7_5930K)
    pcie: PCIeLink = field(default_factory=lambda: PCIE_GEN3)
    compression: CompressionModel = field(default_factory=lambda: CDMA_ENGINE)

    def with_oracular_gpu(self) -> "SystemConfig":
        """Same system but with a capacity-unlimited GPU (Section V-C)."""
        return SystemConfig(gpu=oracular(self.gpu), host=self.host,
                            pcie=self.pcie, compression=self.compression)

    def with_gpu_memory(self, memory_bytes: int) -> "SystemConfig":
        """Same system with a different GPU memory capacity."""
        gpu = GPUSpec(
            name=self.gpu.name,
            peak_flops=self.gpu.peak_flops,
            dram_bandwidth=self.gpu.dram_bandwidth,
            memory_bytes=memory_bytes,
            compute_efficiency=self.gpu.compute_efficiency,
            bandwidth_efficiency=self.gpu.bandwidth_efficiency,
        )
        return SystemConfig(gpu=gpu, host=self.host, pcie=self.pcie,
                            compression=self.compression)


#: The paper's testbed.
PAPER_SYSTEM = SystemConfig()

"""Hardware models: GPU, host memory, PCIe interconnect."""

from .compression import CDMA_ENGINE, CompressionModel
from .config import PAPER_SYSTEM, SystemConfig
from .gpu import (
    GPU_PRESETS,
    GPUSpec,
    HBM_CLASS,
    JETSON_CLASS,
    TITAN_X,
    gpu_preset,
    oracular,
)
from .host import HostSpec, I7_5930K
from .interconnects import (
    ClusterTopology,
    NVLINK_1,
    NVLINK_2,
    PCIE_GEN4,
    TOPOLOGY_PRESETS,
    available_topologies,
    interconnect_sweep,
    make_topology,
    nvlink_mesh,
    nvlink_ring,
    pcie_switch_tree,
    system_with_link,
)
from .pcie import PCIE_GEN3, PCIeLink, TransferMode

__all__ = [
    "CDMA_ENGINE",
    "ClusterTopology",
    "CompressionModel",
    "GPU_PRESETS",
    "GPUSpec",
    "HBM_CLASS",
    "HostSpec",
    "JETSON_CLASS",
    "I7_5930K",
    "NVLINK_1",
    "NVLINK_2",
    "PAPER_SYSTEM",
    "PCIE_GEN3",
    "PCIE_GEN4",
    "PCIeLink",
    "SystemConfig",
    "TITAN_X",
    "TOPOLOGY_PRESETS",
    "TransferMode",
    "available_topologies",
    "gpu_preset",
    "interconnect_sweep",
    "make_topology",
    "nvlink_mesh",
    "nvlink_ring",
    "oracular",
    "pcie_switch_tree",
    "system_with_link",
]

"""System-interconnect (PCIe) transfer models.

Two transfer mechanisms matter to the paper (Section II-C):

* **DMA** — ``cudaMemcpyAsync`` to/from pinned host memory.  The paper
  measures an average 12.8 GB/s out of PCIe gen3's 16 GB/s maximum.
  This is what vDNN's offload/prefetch uses.
* **Page migration** — demand paging of 4 KB pages, each costing
  20-50 us of CPU interrupts, page-table and TLB maintenance plus the
  transfer itself (Zheng et al. [34]), i.e. only 80-200 MB/s.  This is
  the strawman that makes OS-style virtualization a non-starter for
  DNN training and motivates vDNN's explicit DMA approach.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TransferMode(enum.Enum):
    DMA = "dma"
    PAGE_MIGRATION = "page-migration"


@dataclass(frozen=True)
class PCIeLink:
    """One CPU<->GPU interconnect.

    Attributes:
        max_bandwidth: line-rate bytes/s (16 GB/s for gen3 x16).
        dma_bandwidth: sustained DMA bytes/s to pinned memory.
        page_size: OS page granularity for the migration model.
        page_fault_latency: end-to-end cost of migrating one page
            (CPU interrupt + page-table/TLB update + transfer).
        dma_setup_latency: fixed cost of launching one async copy.
    """

    max_bandwidth: float = 16.0e9
    dma_bandwidth: float = 12.8e9
    page_size: int = 4096
    page_fault_latency: float = 35e-6  # midpoint of the paper's 20-50 us
    dma_setup_latency: float = 10e-6

    def __post_init__(self) -> None:
        if self.dma_bandwidth > self.max_bandwidth:
            raise ValueError("DMA bandwidth cannot exceed the line rate")
        if min(self.max_bandwidth, self.dma_bandwidth, self.page_size,
               self.page_fault_latency, self.dma_setup_latency) <= 0:
            raise ValueError("PCIe parameters must be positive")

    # ------------------------------------------------------------------
    def dma_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` with one asynchronous DMA copy."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.dma_setup_latency + nbytes / self.dma_bandwidth

    def page_migration_time(self, nbytes: int) -> float:
        """Seconds to fault-in ``nbytes`` one 4 KB page at a time."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        pages = -(-nbytes // self.page_size)
        return pages * self.page_fault_latency

    def transfer_time(self, nbytes: int, mode: TransferMode) -> float:
        if mode is TransferMode.DMA:
            return self.dma_time(nbytes)
        return self.page_migration_time(nbytes)

    def effective_bandwidth(self, nbytes: int, mode: TransferMode) -> float:
        """Achieved bytes/s for a transfer of the given size."""
        seconds = self.transfer_time(nbytes, mode)
        return nbytes / seconds if seconds > 0 else 0.0


#: The paper's interconnect: PCIe gen3 x16 through a PLX switch.
PCIE_GEN3 = PCIeLink()

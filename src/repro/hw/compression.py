"""Compressing DMA engine model (Rhu et al. 2017, "cDMA").

Offloaded input feature maps that were produced through a ReLU are
highly sparse (the paper measures 45-90% zeros, growing with depth), so
a DMA engine that compresses activations on the fly moves far fewer
bytes over PCIe.  This module models that engine as data:

* a per-layer *sparsity* estimate — ReLU outputs start at
  ``base_sparsity`` and gain ``depth_sparsity`` linearly with relative
  network depth (deeper layers are sparser, cDMA Fig. 4); non-ReLU
  outputs are incompressible;
* the resulting *wire ratio* — ``1 - sparsity`` plus a fixed
  ``metadata_overhead`` for the zero-value bitmask, clamped into
  ``[min_ratio, 1.0]`` so a compressed transfer never grows;
* a fixed ``engine_latency`` added once per compressed DMA for the
  compression pipeline itself.

Everything is deterministic and derived from the layer graph, so
compressed plans stay bit-reproducible and statically verifiable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CompressionModel:
    """Deterministic activation-compression model for offload DMAs."""

    #: seconds of fixed pipeline latency per compressed transfer
    engine_latency: float = 2e-6
    #: zero fraction of a ReLU output at the first layer
    base_sparsity: float = 0.45
    #: extra zero fraction gained across the full network depth
    depth_sparsity: float = 0.35
    #: wire-format overhead (bitmask + alignment) as a byte fraction
    metadata_overhead: float = 0.04
    #: floor on the wire ratio — no transfer compresses below this
    min_ratio: float = 0.05

    def sparsity(self, relu: bool, position: float) -> float:
        """Estimated zero fraction for one layer's input feature maps.

        ``position`` is the producing layer's relative depth in
        ``[0, 1]``; non-ReLU activations are treated as dense.
        """
        if not relu:
            return 0.0
        position = min(max(position, 0.0), 1.0)
        return min(self.base_sparsity + self.depth_sparsity * position, 1.0)

    def ratio(self, relu: bool, position: float) -> float:
        """Wire bytes per raw byte, always in ``(0, 1]``.

        Monotone non-increasing in sparsity: more zeros never cost more
        wire bytes (the property suite pins this law).
        """
        dense = 1.0 - self.sparsity(relu, position) + self.metadata_overhead
        return min(max(dense, self.min_ratio), 1.0)

    def compressed_bytes(self, nbytes: int, relu: bool,
                         position: float) -> int:
        """Wire bytes for one transfer; never exceeds ``nbytes``."""
        if nbytes <= 0:
            return 0
        wire = int(nbytes * self.ratio(relu, position))
        return min(max(wire, 1), nbytes)


#: The default engine modelled after the cDMA paper's configuration.
CDMA_ENGINE = CompressionModel()

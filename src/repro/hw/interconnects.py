"""Alternative system interconnects (Section III-A: "e.g., PCIe, NVLINK").

vDNN's only hardware dependence is the CPU<->GPU link: every stall in
Figure 9 is a transfer outliving its overlapped kernel.  The paper notes
the mechanism applies unchanged to NVLINK; these configurations let the
benchmarks sweep the link speed and find where static vDNN's overhead
vanishes entirely.

Numbers: PCIe gen3 x16 is the paper's testbed (16 GB/s line rate,
12.8 GB/s sustained DMA).  PCIe gen4 x16 doubles that.  NVLink 1.0
(contemporary with the paper: P100) offers 4 bidirectional bricks of
20 GB/s each direction; a typical CPU<->GPU wiring exposes 2 bricks,
i.e. 40 GB/s line rate with ~90% achievable by DMA.
"""

from __future__ import annotations

from .config import SystemConfig
from .gpu import TITAN_X
from .host import I7_5930K
from .pcie import PCIeLink

#: PCIe gen4 x16: double gen3's rates.
PCIE_GEN4 = PCIeLink(max_bandwidth=32.0e9, dma_bandwidth=25.6e9)

#: NVLink 1.0, two bricks CPU<->GPU (Pascal-era POWER8 wiring).
NVLINK_1 = PCIeLink(max_bandwidth=40.0e9, dma_bandwidth=36.0e9,
                    dma_setup_latency=5e-6)

#: NVLink 2.0, three bricks (Volta-era): 75 GB/s line rate.
NVLINK_2 = PCIeLink(max_bandwidth=75.0e9, dma_bandwidth=68.0e9,
                    dma_setup_latency=5e-6)


def system_with_link(link: PCIeLink) -> SystemConfig:
    """The paper's node with a different CPU<->GPU interconnect."""
    return SystemConfig(gpu=TITAN_X, host=I7_5930K, pcie=link)


def interconnect_sweep():
    """(label, SystemConfig) pairs, slowest link first."""
    from .pcie import PCIE_GEN3

    links = {
        "PCIe gen3 (paper)": PCIE_GEN3,
        "PCIe gen4": PCIE_GEN4,
        "NVLink 1.0": NVLINK_1,
        "NVLink 2.0": NVLINK_2,
    }
    return [(label, system_with_link(link)) for label, link in links.items()]

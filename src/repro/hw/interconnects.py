"""Alternative system interconnects (Section III-A: "e.g., PCIe, NVLINK").

vDNN's only hardware dependence is the CPU<->GPU link: every stall in
Figure 9 is a transfer outliving its overlapped kernel.  The paper notes
the mechanism applies unchanged to NVLINK; these configurations let the
benchmarks sweep the link speed and find where static vDNN's overhead
vanishes entirely.

Numbers: PCIe gen3 x16 is the paper's testbed (16 GB/s line rate,
12.8 GB/s sustained DMA).  PCIe gen4 x16 doubles that.  NVLink 1.0
(contemporary with the paper: P100) offers 4 bidirectional bricks of
20 GB/s each direction; a typical CPU<->GPU wiring exposes 2 bricks,
i.e. 40 GB/s line rate with ~90% achievable by DMA.

Every preset states all three knobs that differ between generations —
bandwidths *and* ``dma_setup_latency`` — explicitly, so adjacent points
of :func:`interconnect_sweep` never conflate an intended change with a
silently inherited default (a sweep test pins this).

Beyond single links, this module models **cluster topologies**: N GPUs
wired through shared, contended links.  A :class:`ClusterTopology` names
its links (each a :class:`~repro.hw.pcie.PCIeLink` point model) and two
route kinds over them:

* ``dma_path(gpu)`` — the links host<->GPU DMA traverses: vDNN
  offload/prefetch traffic;
* ``route(a, b)`` — the links a peer-to-peer transfer between two GPUs
  traverses: ring-allreduce gradient hops of a data-parallel job.

Where the two route kinds share a link (every PCIe-switch fabric), the
allreduce traffic of a data-parallel job contends with each worker's
vDNN DMA — the cluster-level bottleneck the Compressing DMA Engine paper
(Rhu et al. 2017) identifies.  NVLink topologies give peers dedicated
side links, so the same workload recovers most of the contention gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from .config import SystemConfig
from .gpu import TITAN_X
from .host import I7_5930K
from .pcie import PCIE_GEN3, PCIeLink

#: PCIe gen4 x16: double gen3's rates.  Setup latency is stated, not
#: inherited: gen4-era copy engines halve the launch overhead, which
#: also aligns it with the NVLink presets so the gen4 -> NVLink sweep
#: steps vary bandwidth alone.
PCIE_GEN4 = PCIeLink(max_bandwidth=32.0e9, dma_bandwidth=25.6e9,
                     dma_setup_latency=5e-6)

#: NVLink 1.0, two bricks CPU<->GPU (Pascal-era POWER8 wiring).
NVLINK_1 = PCIeLink(max_bandwidth=40.0e9, dma_bandwidth=36.0e9,
                    dma_setup_latency=5e-6)

#: NVLink 2.0, three bricks (Volta-era): 75 GB/s line rate.
NVLINK_2 = PCIeLink(max_bandwidth=75.0e9, dma_bandwidth=68.0e9,
                    dma_setup_latency=5e-6)


def system_with_link(link: PCIeLink) -> SystemConfig:
    """The paper's node with a different CPU<->GPU interconnect."""
    return SystemConfig(gpu=TITAN_X, host=I7_5930K, pcie=link)


def interconnect_sweep():
    """(label, SystemConfig) pairs, slowest link first."""
    links = {
        "PCIe gen3 (paper)": PCIE_GEN3,
        "PCIe gen4": PCIE_GEN4,
        "NVLink 1.0": NVLINK_1,
        "NVLink 2.0": NVLINK_2,
    }
    return [(label, system_with_link(link)) for label, link in links.items()]


# ----------------------------------------------------------------------
# Cluster topologies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterTopology:
    """N GPUs wired through shared, individually contended links.

    Attributes:
        name: preset label (``pcie-switch``, ``nvlink-ring``, ...).
        num_gpus: worker count the route tables cover.
        links: one :class:`PCIeLink` point model per physical link.
        link_names: display label per link (same order as ``links``).
        dma_paths: per GPU, the link indices its host DMA traverses.
        peer_paths: ``peer_paths[a][b]`` — link indices a peer transfer
            from GPU ``a`` to GPU ``b`` traverses (empty on the
            diagonal).  Routes are precomputed tables so the topology
            stays a frozen value type the simulators can hash and reuse.
    """

    name: str
    num_gpus: int
    links: Tuple[PCIeLink, ...]
    link_names: Tuple[str, ...]
    dma_paths: Tuple[Tuple[int, ...], ...]
    peer_paths: Tuple[Tuple[Tuple[int, ...], ...], ...]

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError("a cluster needs at least one GPU")
        if len(self.links) != len(self.link_names):
            raise ValueError("links and link_names must pair up")
        if len(self.dma_paths) != self.num_gpus \
                or len(self.peer_paths) != self.num_gpus:
            raise ValueError("route tables must cover every GPU")
        for path in self.dma_paths:
            self._check_path(path)
            if not path:
                raise ValueError("every GPU needs a host DMA path")
        for row_index, row in enumerate(self.peer_paths):
            if len(row) != self.num_gpus:
                raise ValueError("peer_paths must be a full N x N table")
            for col_index, path in enumerate(row):
                self._check_path(path)
                if row_index == col_index and path:
                    raise ValueError("a GPU has no route to itself")
                if row_index != col_index and self.num_gpus > 1 \
                        and not path:
                    raise ValueError(
                        f"no route between GPUs {row_index} and "
                        f"{col_index}")

    def _check_path(self, path: Tuple[int, ...]) -> None:
        for index in path:
            if not 0 <= index < len(self.links):
                raise ValueError(f"link index {index} out of range")

    # ------------------------------------------------------------------
    def dma_path(self, gpu: int) -> Tuple[int, ...]:
        """Link indices host<->``gpu`` DMA (offload/prefetch) traverses."""
        return self.dma_paths[gpu]

    def route(self, a: int, b: int) -> Tuple[int, ...]:
        """Link indices a peer transfer GPU ``a`` -> GPU ``b`` traverses."""
        return self.peer_paths[a][b]

    def host_link(self, gpu: int) -> PCIeLink:
        """The first hop of ``gpu``'s host DMA path (its local link)."""
        return self.links[self.dma_paths[gpu][0]]

    def system(self, gpu: int = 0) -> SystemConfig:
        """The paper's node behind ``gpu``'s local host link.

        Per-worker single-GPU simulations (admission ladders, compiled
        plans, sanitizer traces) run against this system; the cluster
        layer then adds the *shared*-link contention on top.
        """
        return system_with_link(self.host_link(gpu))


def pcie_switch_tree(
    num_gpus: int = 4,
    gpus_per_switch: int = 4,
    link: PCIeLink = PCIE_GEN3,
) -> ClusterTopology:
    """PCIe-switch tree: GPUs behind PLX switches, one uplink each.

    Every GPU has its own x16 link to its switch; each switch shares a
    single x16 uplink to the host.  Host DMA crosses both (GPU link +
    uplink), so all workers under one switch contend for the uplink;
    peer transfers between GPUs under the same switch turn around at the
    switch (GPU links only), while cross-switch peers also cross both
    uplinks.  This is the paper-era commodity fabric — and the topology
    where a data-parallel job's allreduce shares every link with the
    workers' vDNN offload/prefetch DMA.
    """
    if num_gpus < 1:
        raise ValueError("a cluster needs at least one GPU")
    if gpus_per_switch < 1:
        raise ValueError("gpus_per_switch must be positive")
    num_switches = -(-num_gpus // gpus_per_switch)
    links: List[PCIeLink] = []
    names: List[str] = []
    gpu_link = []
    for gpu in range(num_gpus):
        gpu_link.append(len(links))
        links.append(link)
        names.append(f"pcie[gpu{gpu}]")
    uplink = []
    for switch in range(num_switches):
        uplink.append(len(links))
        links.append(link)
        names.append(f"pcie[switch{switch}-uplink]")

    def switch_of(gpu: int) -> int:
        return gpu // gpus_per_switch

    dma_paths = tuple(
        (gpu_link[gpu], uplink[switch_of(gpu)]) for gpu in range(num_gpus)
    )
    peer_rows = []
    for a in range(num_gpus):
        row = []
        for b in range(num_gpus):
            if a == b:
                row.append(())
            elif switch_of(a) == switch_of(b):
                row.append((gpu_link[a], gpu_link[b]))
            else:
                row.append((gpu_link[a], uplink[switch_of(a)],
                            uplink[switch_of(b)], gpu_link[b]))
        peer_rows.append(tuple(row))
    return ClusterTopology(
        name="pcie-switch", num_gpus=num_gpus,
        links=tuple(links), link_names=tuple(names),
        dma_paths=dma_paths, peer_paths=tuple(peer_rows),
    )


def _nvlink_topology(
    name: str,
    num_gpus: int,
    nvlink: PCIeLink,
    host_link: PCIeLink,
    pair_links: Callable[[int, int], bool],
) -> ClusterTopology:
    """Shared scaffolding: dedicated host PCIe + NVLink side fabric."""
    if num_gpus < 1:
        raise ValueError("a cluster needs at least one GPU")
    links: List[PCIeLink] = []
    names: List[str] = []
    host = []
    for gpu in range(num_gpus):
        host.append(len(links))
        links.append(host_link)
        names.append(f"pcie[gpu{gpu}]")
    side: Dict[Tuple[int, int], int] = {}
    for a in range(num_gpus):
        for b in range(a + 1, num_gpus):
            if pair_links(a, b):
                side[(a, b)] = len(links)
                links.append(nvlink)
                names.append(f"nvlink[{a}-{b}]")

    def hop(a: int, b: int) -> int:
        return side[(a, b) if a < b else (b, a)]

    def walk(a: int, b: int) -> Tuple[int, ...]:
        """Multi-hop route along the ring, shorter direction first."""
        forward = (b - a) % num_gpus
        step = 1 if forward <= num_gpus - forward else -1
        path, here = [], a
        while here != b:
            nxt = (here + step) % num_gpus
            path.append(hop(here, nxt))
            here = nxt
        return tuple(path)

    peer_rows = []
    for a in range(num_gpus):
        row = []
        for b in range(num_gpus):
            if a == b:
                row.append(())
            elif (min(a, b), max(a, b)) in side:
                row.append((hop(a, b),))
            else:
                row.append(walk(a, b))
        peer_rows.append(tuple(row))
    return ClusterTopology(
        name=name, num_gpus=num_gpus,
        links=tuple(links), link_names=tuple(names),
        dma_paths=tuple((h,) for h in host),
        peer_paths=tuple(peer_rows),
    )


def nvlink_ring(
    num_gpus: int = 4,
    nvlink: PCIeLink = NVLINK_2,
    host_link: PCIeLink = PCIE_GEN3,
) -> ClusterTopology:
    """NVLink ring: dedicated host PCIe per GPU + NVLink between
    ring neighbours.

    Host DMA (vDNN offload/prefetch) keeps a private x16 link per GPU;
    ring-allreduce hops ride dedicated NVLinks that touch no PCIe link
    at all.  The two traffic classes are disjoint, which is exactly how
    this topology recovers the PCIe-switch contention gap.
    """
    if num_gpus == 1:
        return _nvlink_topology("nvlink-ring", 1, nvlink, host_link,
                                lambda a, b: False)
    return _nvlink_topology(
        "nvlink-ring", num_gpus, nvlink, host_link,
        lambda a, b: b - a == 1 or (a == 0 and b == num_gpus - 1),
    )


def nvlink_mesh(
    num_gpus: int = 4,
    nvlink: PCIeLink = NVLINK_2,
    host_link: PCIeLink = PCIE_GEN3,
) -> ClusterTopology:
    """Fully connected NVLink mesh: a dedicated link per GPU pair."""
    return _nvlink_topology("nvlink-mesh", num_gpus, nvlink, host_link,
                            lambda a, b: True)


#: Topology factories by preset name (each takes ``num_gpus``).
TOPOLOGY_PRESETS: Dict[str, Callable[[int], ClusterTopology]] = {
    "pcie-switch": pcie_switch_tree,
    "nvlink-ring": nvlink_ring,
    "nvlink-mesh": nvlink_mesh,
}


def available_topologies() -> List[str]:
    """Preset names accepted by :func:`make_topology`."""
    return sorted(TOPOLOGY_PRESETS)


def make_topology(name: str, num_gpus: int = 4) -> ClusterTopology:
    """Instantiate a topology preset by registry key."""
    key = name.strip().lower()
    if key not in TOPOLOGY_PRESETS:
        raise KeyError(
            f"unknown topology {name!r}; "
            f"available: {', '.join(available_topologies())}"
        )
    return TOPOLOGY_PRESETS[key](num_gpus)

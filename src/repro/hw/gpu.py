"""GPU device model.

The simulator never executes CUDA; it consumes a :class:`GPUSpec` that
captures the three numbers that govern every result in the paper —
peak arithmetic throughput, peak DRAM bandwidth, and physical memory
capacity — plus the efficiency knobs the roofline latency model needs.
:data:`TITAN_X` matches the paper's testbed (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU.

    Attributes:
        name: marketing name.
        peak_flops: peak single-precision FLOP/s.
        dram_bandwidth: peak device-memory bandwidth, bytes/s.
        memory_bytes: physical device memory capacity, bytes.
        compute_efficiency: fraction of ``peak_flops`` a well-tuned dense
            kernel (cuDNN convolution / cuBLAS GEMM) sustains.  Published
            cuDNN 4 measurements on Maxwell land at 50-65% of peak for
            the large convolutions in the studied networks.
        bandwidth_efficiency: fraction of ``dram_bandwidth`` sustained by
            streaming kernels (pooling / activation / LRN).
    """

    name: str
    peak_flops: float
    dram_bandwidth: float
    memory_bytes: int
    compute_efficiency: float = 0.55
    bandwidth_efficiency: float = 0.75

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.dram_bandwidth <= 0:
            raise ValueError("GPU throughput figures must be positive")
        if self.memory_bytes <= 0:
            raise ValueError("GPU memory capacity must be positive")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not 0 < self.bandwidth_efficiency <= 1:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")

    @property
    def effective_flops(self) -> float:
        """Sustained FLOP/s for dense math kernels."""
        return self.peak_flops * self.compute_efficiency

    @property
    def effective_bandwidth(self) -> float:
        """Sustained bytes/s for bandwidth-bound kernels."""
        return self.dram_bandwidth * self.bandwidth_efficiency


#: The paper's testbed: NVIDIA GeForce GTX Titan X (Maxwell).
#: 7 TFLOPS single precision, 336 GB/s, 12 GB (Section IV-B).
TITAN_X = GPUSpec(
    name="NVIDIA Titan X (Maxwell)",
    peak_flops=7.0e12,
    dram_bandwidth=336.0e9,
    memory_bytes=12 * (1 << 30),
)


#: HBM-class datacenter accelerator (A100-40GB shape): 19.5 TFLOPS
#: single precision, 1555 GB/s HBM2e, 40 GB.  The high-bandwidth end of
#: the serving scenarios — weight streaming is PCIe-bound here, compute
#: rarely is.
HBM_CLASS = GPUSpec(
    name="HBM-class accelerator (A100 40GB)",
    peak_flops=19.5e12,
    dram_bandwidth=1555.0e9,
    memory_bytes=40 * (1 << 30),
)

#: Low-end edge module (Jetson TX2 shape): ~1.33 TFLOPS, 59.7 GB/s
#: shared LPDDR4, 8 GB.  Edge kernels sustain a smaller fraction of
#: peak than tuned datacenter cuDNN kernels, hence the lower efficiency
#: knobs.  The tight-memory end of the serving scenarios, where demand
#: layering is the difference between serving a model zoo and not.
JETSON_CLASS = GPUSpec(
    name="Jetson-class edge module (TX2)",
    peak_flops=1.33e12,
    dram_bandwidth=59.7e9,
    memory_bytes=8 * (1 << 30),
    compute_efficiency=0.45,
    bandwidth_efficiency=0.60,
)

#: Named device presets for CLI/scenario lookup.  Keys are the
#: canonical lowercase names :func:`gpu_preset` resolves.
GPU_PRESETS = {
    "titanx": TITAN_X,
    "hbm": HBM_CLASS,
    "jetson": JETSON_CLASS,
}


def gpu_preset(name: str) -> GPUSpec:
    """Look up a :data:`GPU_PRESETS` entry by (forgiving) name.

    Case-insensitive; dashes/underscores/spaces are ignored, so
    ``"Titan-X"``, ``"titan_x"`` and ``"titanx"`` all resolve.
    """
    key = name.lower().replace("-", "").replace("_", "").replace(" ", "")
    if key not in GPU_PRESETS:
        raise KeyError(
            f"unknown GPU preset {name!r}; "
            f"available: {', '.join(sorted(GPU_PRESETS))}")
    return GPU_PRESETS[key]


def oracular(spec: GPUSpec, memory_bytes: int = 1 << 46) -> GPUSpec:
    """A hypothetical GPU with (effectively) unlimited memory.

    The paper evaluates VGG-16 (128p/256) against "a hypothetical,
    oracular GPU with enough memory to hold the entire DNN" — same
    compute/bandwidth, no capacity wall.
    """
    return GPUSpec(
        name=f"{spec.name} (oracular)",
        peak_flops=spec.peak_flops,
        dram_bandwidth=spec.dram_bandwidth,
        memory_bytes=memory_bytes,
        compute_efficiency=spec.compute_efficiency,
        bandwidth_efficiency=spec.bandwidth_efficiency,
    )

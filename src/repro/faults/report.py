"""Structured record of every injected fault and how the runtime reacted.

A :class:`FaultReport` is the audit trail of one faulted run: one
:class:`FaultEvent` per injected fault, plus aggregate counters.  It is
deliberately deterministic — events are appended in simulation order,
and :meth:`FaultReport.to_json` serialises with sorted keys — so that
the acceptance bar *same seed ⇒ byte-identical report* can be asserted
by comparing strings.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .spec import FaultSpec

#: Outcomes that count as a recovery failure for :attr:`recovery_rate`.
FAILED_OUTCOMES = frozenset({"fatal", "rejected"})


@dataclass
class FaultEvent:
    """One injected fault and the runtime's reaction to it.

    Attributes:
        kind: fault family — ``dma-offload``, ``dma-prefetch``,
            ``dma-demand``, ``pinned-pressure``, ``budget-shrink``,
            ``eviction``.
        time: simulated time (seconds) the fault struck.
        target: what it hit — a layer/storage label or a job name.
        attempts: DMA attempts consumed (0 for non-DMA faults).
        outcome: how it resolved — ``recovered`` (retry or readmission
            succeeded), ``degraded`` (gave up but execution continued
            correctly without the optimisation), ``deferred`` (prefetch
            abandoned, satisfied later on demand), ``fatal`` (iteration
            failed), ``rejected`` (evicted job never readmitted).
        nbytes: transfer or allocation size involved, if any.
        detail: free-form human-readable context.
    """

    kind: str
    time: float
    target: str
    attempts: int = 0
    outcome: str = "recovered"
    nbytes: int = 0
    detail: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "time": round(self.time, 9),
            "target": self.target,
            "attempts": self.attempts,
            "outcome": self.outcome,
            "nbytes": self.nbytes,
            "detail": self.detail,
        }


@dataclass
class FaultReport:
    """Everything that went wrong in one run, and how it was absorbed."""

    spec: FaultSpec
    seed: int
    events: List[FaultEvent] = field(default_factory=list)

    def add(self, event: FaultEvent) -> FaultEvent:
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    @property
    def total_faults(self) -> int:
        return len(self.events)

    @property
    def retries(self) -> int:
        """Extra DMA attempts beyond the first, summed over all events."""
        return sum(max(0, e.attempts - 1) for e in self.events)

    def count(self, outcome: str) -> int:
        return sum(1 for e in self.events if e.outcome == outcome)

    @property
    def recovery_rate(self) -> float:
        """Fraction of injected faults absorbed without failing work.

        ``recovered``/``degraded``/``deferred`` all count as absorbed;
        ``fatal`` and ``rejected`` do not.  1.0 when nothing was
        injected — a perfect run recovered from everything it faced.
        """
        if not self.events:
            return 1.0
        failed = sum(1 for e in self.events if e.outcome in FAILED_OUTCOMES)
        return 1.0 - failed / len(self.events)

    @property
    def outcomes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.outcome] = counts.get(event.outcome, 0) + 1
        return counts

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.label,
            "seed": self.seed,
            "total_faults": self.total_faults,
            "retries": self.retries,
            "recovery_rate": round(self.recovery_rate, 9),
            "outcomes": self.outcomes,
            "events": [e.to_dict() for e in self.events],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """Deterministic JSON: same seed ⇒ byte-identical string."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def summary_lines(self) -> List[str]:
        lines = [
            f"faults injected   {self.total_faults}",
            f"dma retries       {self.retries}",
            f"recovery rate     {self.recovery_rate:.1%}",
        ]
        for outcome in sorted(self.outcomes):
            lines.append(f"  {outcome:<15} {self.outcomes[outcome]}")
        return lines

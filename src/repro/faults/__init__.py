"""Deterministic fault injection and graceful-degradation machinery."""

from .injector import DMAAbortError, FaultInjector, make_injector
from .report import FAILED_OUTCOMES, FaultEvent, FaultReport
from .spec import (
    DEFAULT_BACKOFF_BASE,
    DEFAULT_BACKOFF_FACTOR,
    DEFAULT_MAX_ATTEMPTS,
    FaultSpec,
    FaultSpecError,
)

__all__ = [
    "DEFAULT_BACKOFF_BASE",
    "DEFAULT_BACKOFF_FACTOR",
    "DEFAULT_MAX_ATTEMPTS",
    "DMAAbortError",
    "FAILED_OUTCOMES",
    "FaultEvent",
    "FaultInjector",
    "FaultReport",
    "FaultSpec",
    "FaultSpecError",
    "make_injector",
]

"""Fault specifications: the deterministic description of an imperfect GPU.

vDNN's transfer machinery and the multi-tenant scheduler both assume a
perfect machine — every DMA completes, PCIe bandwidth is constant, the
pool never shrinks, no admitted job is ever evicted.  A
:class:`FaultSpec` names the ways this reproduction lets that assumption
break, in two families:

* **Stochastic faults** consumed by the executor, drawn from a seeded
  RNG so the same ``(spec, seed)`` always injects the same faults:
  transient offload/prefetch DMA failures, PCIe bandwidth degradation
  and per-transfer jitter, pinned-host-budget pressure.
* **Timed events** consumed by the scheduler, applied at exact simulated
  timestamps: mid-run memory-budget shrinks and job evictions.

Specs parse from a compact CLI string, comma-separated ``key=value``
pairs with ``key@time=value`` for timed events::

    dma=0.1,pcie=0.5,jitter=0.2,retries=5,shrink@30=0.5,evict@10=vgg16#1

meaning: 10% transient failure rate on every DMA, PCIe at half
bandwidth with ±20% per-transfer jitter, up to 5 attempts per transfer,
the memory budget halves at t=30s, and job ``vgg16#1`` is evicted at
t=10s.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

#: Default bound on DMA attempts (first try + retries).
DEFAULT_MAX_ATTEMPTS = 4
#: Default backoff before the first retry, seconds.
DEFAULT_BACKOFF_BASE = 0.002
#: Default exponential backoff growth factor per retry.
DEFAULT_BACKOFF_FACTOR = 2.0


class FaultSpecError(ValueError):
    """Raised when a fault-spec string cannot be parsed or validated."""


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic description of an imperfect machine.

    Attributes:
        dma_failure_rate: probability any one DMA attempt (offload or
            prefetch) transiently fails; per-kind overrides win.
        offload_failure_rate: offload-only override (None = use dma).
        prefetch_failure_rate: prefetch-only override (None = use dma).
        pcie_bw_factor: sustained DMA bandwidth multiplier in (0, 1] —
            the degraded-link model of *Compressing DMA Engine*.
        pcie_jitter: per-transfer uniform bandwidth jitter in [0, 1);
            each transfer's bandwidth is scaled by U(1-j, 1+j).
        pinned_budget_factor: pinned-host budget multiplier in (0, 1].
        max_dma_attempts: bound on attempts per transfer (>= 1).
        backoff_base: idle seconds before the first retry.
        backoff_factor: exponential growth of the backoff per retry.
        budget_shrinks: ((time, factor), ...) scheduler events — at
            ``time`` the shared budget becomes ``factor`` x the
            *original* budget.
        evictions: ((time, job_name), ...) scheduler events — at
            ``time`` the named resident job is evicted and re-queued.
    """

    dma_failure_rate: float = 0.0
    offload_failure_rate: Optional[float] = None
    prefetch_failure_rate: Optional[float] = None
    pcie_bw_factor: float = 1.0
    pcie_jitter: float = 0.0
    pinned_budget_factor: float = 1.0
    max_dma_attempts: int = DEFAULT_MAX_ATTEMPTS
    backoff_base: float = DEFAULT_BACKOFF_BASE
    backoff_factor: float = DEFAULT_BACKOFF_FACTOR
    budget_shrinks: Tuple[Tuple[float, float], ...] = field(default=())
    evictions: Tuple[Tuple[float, str], ...] = field(default=())

    def __post_init__(self) -> None:
        for name in ("dma_failure_rate", "offload_failure_rate",
                     "prefetch_failure_rate"):
            rate = getattr(self, name)
            if rate is not None and not 0.0 <= rate <= 1.0:
                raise FaultSpecError(
                    f"{name} must be in [0, 1], got {rate}")
        for name in ("pcie_bw_factor", "pinned_budget_factor"):
            factor = getattr(self, name)
            if not 0.0 < factor <= 1.0:
                raise FaultSpecError(
                    f"{name} must be in (0, 1], got {factor}")
        if not 0.0 <= self.pcie_jitter < 1.0:
            raise FaultSpecError(
                f"pcie_jitter must be in [0, 1), got {self.pcie_jitter}")
        if self.max_dma_attempts < 1:
            raise FaultSpecError(
                f"max_dma_attempts must be >= 1, got {self.max_dma_attempts}")
        if self.backoff_base < 0:
            raise FaultSpecError(
                f"backoff_base cannot be negative, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise FaultSpecError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        for time, factor in self.budget_shrinks:
            if time < 0 or not 0.0 < factor <= 1.0:
                raise FaultSpecError(
                    f"shrink@{time}={factor}: time must be >= 0 and the "
                    f"factor in (0, 1]")
        for time, name in self.evictions:
            if time < 0 or not name:
                raise FaultSpecError(
                    f"evict@{time}={name!r}: time must be >= 0 and the "
                    f"job name non-empty")

    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultSpec":
        """The perfect machine: injecting it changes nothing."""
        return cls()

    @property
    def enabled(self) -> bool:
        """Whether this spec can inject any fault at all."""
        return bool(
            self.dma_failure_rate > 0
            or (self.offload_failure_rate or 0) > 0
            or (self.prefetch_failure_rate or 0) > 0
            or self.pcie_bw_factor < 1.0
            or self.pcie_jitter > 0
            or self.pinned_budget_factor < 1.0
            or self.budget_shrinks
            or self.evictions
        )

    def failure_rate(self, kind: str) -> float:
        """Per-attempt failure probability for ``"offload"``/``"prefetch"``."""
        if kind == "offload" and self.offload_failure_rate is not None:
            return self.offload_failure_rate
        if kind == "prefetch" and self.prefetch_failure_rate is not None:
            return self.prefetch_failure_rate
        return self.dma_failure_rate

    def backoff_seconds(self, attempt: int) -> float:
        """Idle time before retrying after failed attempt ``attempt`` (1-based).

        Monotone non-decreasing in ``attempt``: exponential growth from
        ``backoff_base`` by ``backoff_factor`` per additional failure.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        return self.backoff_base * self.backoff_factor ** (attempt - 1)

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Canonical compact spec string (parses back to an equal spec)."""
        parts = []
        if self.dma_failure_rate:
            parts.append(f"dma={self.dma_failure_rate:g}")
        if self.offload_failure_rate is not None:
            parts.append(f"dma_offload={self.offload_failure_rate:g}")
        if self.prefetch_failure_rate is not None:
            parts.append(f"dma_prefetch={self.prefetch_failure_rate:g}")
        if self.pcie_bw_factor != 1.0:
            parts.append(f"pcie={self.pcie_bw_factor:g}")
        if self.pcie_jitter:
            parts.append(f"jitter={self.pcie_jitter:g}")
        if self.pinned_budget_factor != 1.0:
            parts.append(f"pinned={self.pinned_budget_factor:g}")
        if self.max_dma_attempts != DEFAULT_MAX_ATTEMPTS:
            parts.append(f"retries={self.max_dma_attempts}")
        if self.backoff_base != DEFAULT_BACKOFF_BASE:
            parts.append(f"backoff={self.backoff_base:g}")
        if self.backoff_factor != DEFAULT_BACKOFF_FACTOR:
            parts.append(f"backoff_factor={self.backoff_factor:g}")
        for time, factor in self.budget_shrinks:
            parts.append(f"shrink@{time:g}={factor:g}")
        for time, name in self.evictions:
            parts.append(f"evict@{time:g}={name}")
        return ",".join(parts) or "none"

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the compact CLI grammar described in the module docstring."""
        spec = cls()
        text = (text or "").strip()
        if not text or text == "none":
            return spec
        shrinks = []
        evictions = []
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise FaultSpecError(
                    f"bad fault token {token!r}: expected key=value "
                    f"or key@time=value")
            key, value = token.split("=", 1)
            key, value = key.strip(), value.strip()
            if "@" in key:
                key, at = key.split("@", 1)
                try:
                    time = float(at)
                except ValueError:
                    raise FaultSpecError(
                        f"bad fault time {at!r} in {token!r}") from None
                if key == "shrink":
                    shrinks.append((time, _float(token, value)))
                elif key == "evict":
                    evictions.append((time, value))
                else:
                    raise FaultSpecError(
                        f"unknown timed fault {key!r} in {token!r} "
                        f"(timed faults: shrink, evict)")
                continue
            try:
                spec = replace(spec, **{_KEYS[key]: _convert(key, token, value)})
            except KeyError:
                raise FaultSpecError(
                    f"unknown fault key {key!r} in {token!r} "
                    f"(keys: {', '.join(sorted(_KEYS))})") from None
        if shrinks or evictions:
            spec = replace(
                spec,
                budget_shrinks=tuple(sorted(shrinks)),
                evictions=tuple(sorted(evictions)),
            )
        return spec


_KEYS = {
    "dma": "dma_failure_rate",
    "dma_offload": "offload_failure_rate",
    "dma_prefetch": "prefetch_failure_rate",
    "pcie": "pcie_bw_factor",
    "jitter": "pcie_jitter",
    "pinned": "pinned_budget_factor",
    "retries": "max_dma_attempts",
    "backoff": "backoff_base",
    "backoff_factor": "backoff_factor",
}


def _float(token: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise FaultSpecError(
            f"bad fault value {value!r} in {token!r}: expected a number"
        ) from None


def _convert(key: str, token: str, value: str):
    if key == "retries":
        try:
            return int(value)
        except ValueError:
            raise FaultSpecError(
                f"bad fault value {value!r} in {token!r}: expected an "
                f"integer") from None
    return _float(token, value)

"""Seeded fault injector: the single source of randomness in a faulted run.

The executor's simulation is serial, so RNG draws happen in a fixed
order for a fixed ``(network, batch, policy, spec)`` — which is what
makes *same seed ⇒ bit-identical FaultReport* hold.  Two guards protect
the complementary guarantee, *faults off ⇒ bit-identical to a run with
no injector at all*:

* a fault family whose knob is at its neutral value consumes **no** RNG
  draw (so ``dma=0.1`` alone draws nothing for jitter, and vice versa);
* a bandwidth factor of exactly ``1.0`` multiplies transfer times by
  the float ``1.0``, which is exact, so an all-neutral spec reproduces
  today's timings bit for bit.
"""

from __future__ import annotations

import random
from typing import Optional

from ..hw.pcie import PCIeLink
from ..obs import Instrumentation
from .report import FaultEvent, FaultReport
from .spec import FaultSpec


class DMAAbortError(RuntimeError):
    """A DMA transfer exhausted its retry budget and cannot be skipped."""


class FaultInjector:
    """Draws faults from a seeded stream and logs them into a report."""

    def __init__(self, spec: FaultSpec, seed: int = 0,
                 obs: Optional[Instrumentation] = None) -> None:
        self.spec = spec
        self.seed = seed
        self.rng = random.Random(seed)
        self.report = FaultReport(spec=spec, seed=seed)
        self.obs = obs

    # ------------------------------------------------------------------
    def dma_seconds(self, pcie: PCIeLink, nbytes: int) -> float:
        """Transfer time over the degraded, jittered link.

        With both knobs neutral this is exactly ``pcie.dma_time(nbytes)``
        and no RNG is consumed.
        """
        base = pcie.dma_time(nbytes)
        factor = self.spec.pcie_bw_factor
        if self.spec.pcie_jitter > 0:
            jitter = self.spec.pcie_jitter
            factor *= self.rng.uniform(1.0 - jitter, 1.0 + jitter)
        if factor == 1.0:
            return base
        # Setup latency is link-level and unaffected; only the wire
        # portion stretches when bandwidth degrades.
        wire = base - pcie.dma_setup_latency
        return pcie.dma_setup_latency + wire / factor

    def dma_fails(self, kind: str) -> bool:
        """Whether one DMA attempt of ``kind`` transiently fails.

        Consumes one RNG draw only when the failure rate is positive.
        """
        rate = self.spec.failure_rate(kind)
        if rate <= 0.0:
            return False
        return self.rng.random() < rate

    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        time: float,
        target: str,
        *,
        attempts: int = 0,
        outcome: str = "recovered",
        nbytes: int = 0,
        detail: str = "",
    ) -> FaultEvent:
        event = self.report.add(FaultEvent(
            kind=kind, time=time, target=target, attempts=attempts,
            outcome=outcome, nbytes=nbytes, detail=detail,
        ))
        if self.obs is not None:
            self.obs.fault_event(kind, outcome)
        return event


def make_injector(
    spec: Optional[FaultSpec], seed: int = 0,
    obs: Optional[Instrumentation] = None,
) -> Optional[FaultInjector]:
    """Build an injector, or None when no spec is given."""
    if spec is None:
        return None
    return FaultInjector(spec, seed, obs=obs)

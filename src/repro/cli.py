"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``networks`` — list the zoo and each configuration's baseline footprint;
* ``evaluate`` — simulate one network under one policy/algorithm;
* ``sweep`` — the full Figure-11/14 policy sweep for one network;
* ``capacity`` — max trainable batch per policy;
* ``figures`` — regenerate one or all paper figures;
* ``train-demo`` — run real numpy training under a memory budget;
* ``schedule`` — pack concurrent training jobs onto one virtualized GPU;
* ``serve`` — online inference serving: an open-loop arrival stream over
  a multiplexed model zoo, weights resident or demand-layered through a
  sliding PCIe window, with SLO quantiles from the obs histograms; see
  docs/serving.md.
* ``verify`` — run the schedule sanitizer (race + memory-safety passes)
  over simulated schedules; see docs/analysis.md.
* ``faults`` — simulate under deterministic fault injection (degraded
  PCIe, transient DMA failures, pinned pressure) and report recovery;
  ``evaluate`` and ``schedule`` also accept ``--faults``/``--fault-seed``.
* ``metrics`` — run one instrumented simulation (or schedule) and emit
  its metrics in Prometheus text format or sorted-keys JSON; see
  docs/observability.md.  ``evaluate`` and ``schedule`` accept
  ``--metrics [prom|json]`` to append the same export to their report.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import List, Optional

from .core import (
    capacity_report,
    compare_policies,
    evaluate,
    oracular_baseline,
)
from .faults import FaultSpec, FaultSpecError
from .graph import gb
from .hw import PAPER_SYSTEM
from .reporting import format_table, gb_str, ms_str, pct_str
from .zoo import available, build


def _parse_faults(args) -> Optional[FaultSpec]:
    """Parse ``--faults``; raises SystemExit-friendly FaultSpecError."""
    if not getattr(args, "faults", None):
        return None
    return FaultSpec.parse(args.faults)


#: Size-string suffixes accepted by :func:`_parse_bytes` (binary units;
#: the decimal spellings are accepted as their binary siblings).
_BYTE_SUFFIXES = {
    "kib": 1 << 10, "kb": 1 << 10, "k": 1 << 10,
    "mib": 1 << 20, "mb": 1 << 20, "m": 1 << 20,
    "gib": 1 << 30, "gb": 1 << 30, "g": 1 << 30,
}


def _parse_bytes(text: str) -> int:
    """Parse a human size string — ``4GiB``, ``512MB``, ``65536``.

    A size is a *positive* byte count: zero and negative results are
    rejected with the same error as unparseable text, so ``-4GiB``
    cannot flow into ``--budget``/``--window`` and corrupt allocator
    math downstream.
    """
    cleaned = text.strip().lower().replace(" ", "")
    nbytes = None
    for suffix in sorted(_BYTE_SUFFIXES, key=len, reverse=True):
        if cleaned.endswith(suffix):
            number = cleaned[: -len(suffix)]
            try:
                nbytes = int(float(number) * _BYTE_SUFFIXES[suffix])
            except ValueError:
                pass
            break
    if nbytes is None:
        try:
            nbytes = int(cleaned)
        except ValueError:
            nbytes = None
    if nbytes is None or nbytes <= 0:
        raise ValueError(
            f"cannot parse size {text!r} (try 4GiB, 512MiB, 65536)"
        )
    return nbytes


@contextmanager
def _cache_observed(obs):
    """Attach ``obs`` to the process-wide result cache for one run."""
    from .perf.cache import get_cache

    cache = get_cache()
    previous = cache.obs
    cache.obs = obs
    try:
        yield
    finally:
        cache.obs = previous


def _make_obs():
    from .obs import Instrumentation

    return Instrumentation()


def _render_metrics(obs, fmt: str, meta: Optional[dict] = None) -> str:
    from .obs import metrics_json, prometheus_text

    obs.flush()  # resolve deferred end-of-run summaries
    if fmt == "json":
        return metrics_json(obs.registry, spans=obs.spans, meta=meta)
    return prometheus_text(obs.registry)


def _cmd_networks(_args) -> int:
    rows = []
    for name in available():
        network = build(name)
        base = evaluate(network, policy="base", algo="p")
        rows.append([
            name, network.name, len(network), len(network.conv_layers),
            gb_str(base.max_usage_bytes),
            "yes" if base.trainable else "NO",
        ])
    print(format_table(
        ["key", "configuration", "layers", "convs", "baseline footprint",
         "fits 12 GB"],
        rows, title="Network zoo (paper defaults)",
    ))
    return 0


def _cmd_evaluate(args) -> int:
    network = build(args.network, args.batch)
    try:
        faults = _parse_faults(args)
    except FaultSpecError as exc:
        print(f"bad fault spec: {exc}", file=sys.stderr)
        return 2
    obs = _make_obs() if args.metrics else None
    try:
        with _cache_observed(obs):
            result = evaluate(network, policy=args.policy, algo=args.algo,
                              faults=faults, fault_seed=args.fault_seed,
                              obs=obs)
    except ValueError as exc:
        if faults is None:
            raise
        print(f"faults: {exc}", file=sys.stderr)
        return 2
    oracle = oracular_baseline(network)
    rows = [
        ["trainable", "yes" if result.trainable else
         f"NO ({result.failure})"],
        ["max memory", gb_str(result.max_usage_bytes)],
        ["avg memory", gb_str(result.avg_usage_bytes)],
        ["offloaded / iteration", gb_str(result.offload_bytes)],
        ["iteration time", ms_str(result.total_time)],
        ["compute stalls", ms_str(result.compute_stall_seconds)],
        ["perf vs oracular baseline",
         f"{oracle.feature_extraction_time / result.feature_extraction_time:.2f}"
         if result.feature_extraction_time else "-"],
    ]
    print(format_table(
        ["metric", "value"], rows,
        title=f"{network.name} under {result.label}",
    ))
    if result.fault_report is not None:
        print()
        print(f"Faults (spec {result.fault_report.spec.label}, "
              f"seed {result.fault_report.seed}):")
        for line in result.fault_report.summary_lines():
            print(f"  {line}")
    if obs is not None:
        print()
        print(_render_metrics(obs, args.metrics, meta={
            "command": "evaluate", "network": network.name,
            "policy": args.policy, "algo": args.algo,
        }).rstrip("\n"))
    return 0 if result.trainable else 1


def _cmd_sweep(args) -> int:
    network = build(args.network, args.batch)
    sweep = compare_policies(network, jobs=args.jobs)
    oracle = oracular_baseline(network)
    rows = []
    for key in ("all(m)", "all(p)", "conv(m)", "conv(p)", "comp(m)",
                "comp(p)", "dyn", "joint", "base(m)", "base(p)"):
        r = sweep[key]
        star = "" if r.trainable else "*"
        rows.append([
            key + star,
            gb_str(r.avg_usage_bytes), gb_str(r.max_usage_bytes),
            ms_str(r.feature_extraction_time),
            f"{oracle.feature_extraction_time / r.feature_extraction_time:.2f}",
        ])
    print(format_table(
        ["config", "avg mem", "max mem", "fe time", "perf vs oracle"],
        rows, title=f"{network.name}: policy sweep (* = exceeds GPU memory)",
    ))
    return 0


def _cmd_capacity(args) -> int:
    network = build(args.network, args.batch)
    report = capacity_report(network, PAPER_SYSTEM, upper_limit=args.limit)
    print(format_table(
        ["policy", "max trainable batch"],
        [[k, v] for k, v in report.max_batch.items()],
        title=f"Batch capacity of {network.name.split('(')[0]} on "
              f"{report.gpu_name}",
    ))
    return 0


def _cmd_plan(args) -> int:
    from .core import plan_training_run

    network = build(args.network, args.batch)
    plan = plan_training_run(network, PAPER_SYSTEM,
                             dataset_size=args.dataset_size,
                             epochs=args.epochs)
    print(format_table(
        ["metric", "value"], plan.summary_rows(),
        title=f"Training-run plan: {network.name}, "
              f"{args.epochs} epochs over {args.dataset_size:,} images",
    ))
    return 0


def _cmd_figures(args) -> int:
    from .reporting import figures as fig_mod

    jobs = args.jobs
    drivers = {
        "fig01": lambda: fig_mod.fig01_baseline_usage(),
        "fig04": lambda: fig_mod.fig04_breakdown(),
        "fig05": lambda: fig_mod.fig05_per_layer(build("vgg16", 256)),
        "fig06": lambda: fig_mod.fig06_reuse_distance(build("vgg16", 64)),
        "fig11": lambda: fig_mod.fig11_memory_usage(jobs=jobs),
        "fig12": lambda: fig_mod.fig12_offload_size(),
        "fig13": lambda: fig_mod.fig13_dram_bandwidth(build("vgg16", 256)),
        "fig14": lambda: fig_mod.fig14_performance(jobs=jobs),
        "fig15": lambda: fig_mod.fig15_very_deep(),
        "headline": lambda: fig_mod.headline(jobs=jobs),
    }
    wanted = drivers if args.figure == "all" else {args.figure: drivers[args.figure]}
    for name, driver in wanted.items():
        text = driver().text
        if args.out:
            import os

            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, f"{name}.txt")
            with open(path, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {path}")
        else:
            print(text)
            print()
    return 0


def _cmd_train_demo(args) -> int:
    import numpy as np

    from .core import TransferPolicy
    from .graph import NetworkBuilder
    from .numerics import TrainingRuntime, make_batch

    builder = NetworkBuilder("demo-cnn", (args.batch, 3, 32, 32))
    for _ in range(4):
        builder.conv(32, kernel=3, pad=1).relu()
    builder.pool()
    network = builder.fc(10).softmax().build()

    policy = {"none": TransferPolicy.none,
              "all": TransferPolicy.vdnn_all,
              "conv": TransferPolicy.vdnn_conv}[args.policy]()
    runtime = TrainingRuntime(network, policy, seed=0, learning_rate=0.02)
    for step in range(args.steps):
        images, labels = make_batch((args.batch, 3, 32, 32), 10, seed=step)
        result = runtime.train_step(images, labels)
        print(f"step {step:2d}  loss {result.loss:7.4f}  "
              f"device peak {result.device_peak_bytes / (1 << 20):6.1f} MiB  "
              f"offloads {result.offload_count}")
    return 0


#: Default ``schedule`` workload: the paper's four headline ImageNet
#: networks as four co-tenant jobs on one 12 GB TITAN X.
DEFAULT_WORKLOAD = "alexnet:128:50,vgg16:64:50,resnet50:32:50,googlenet:128:50"

#: Default ``cluster`` workload: one 4-GPU data-parallel gang (the
#: PCIe-bound network, where ring allreduce meets vDNN DMA) plus
#: single-GPU fill jobs.
DEFAULT_CLUSTER_WORKLOAD = \
    "resnet50:32:30:4,alexnet:128:40,vgg16:64:20,googlenet:128:40"


def _cmd_schedule(args) -> int:
    from .sched import Job, JobState, schedule_jobs, schedule_report

    try:
        jobs = [
            Job.parse(spec, index)
            for index, spec in enumerate(args.jobs.split(","))
            if spec.strip()
        ]
    except (KeyError, ValueError) as exc:
        print(f"bad job spec: {exc}", file=sys.stderr)
        return 2
    if not jobs:
        print("no jobs given", file=sys.stderr)
        return 2
    budget = int(args.budget_gb * (1 << 30))
    if budget <= 0:
        print(f"budget must be positive, got {args.budget_gb} GB",
              file=sys.stderr)
        return 2
    try:
        faults = _parse_faults(args)
    except FaultSpecError as exc:
        print(f"bad fault spec: {exc}", file=sys.stderr)
        return 2
    obs = _make_obs() if args.metrics else None
    result = schedule_jobs(jobs, system=PAPER_SYSTEM, policy=args.policy,
                           budget_bytes=budget, faults=faults,
                           fault_seed=args.fault_seed, obs=obs)
    print(schedule_report(result))
    if obs is not None:
        print()
        print(_render_metrics(obs, args.metrics, meta={
            "command": "schedule", "policy": args.policy,
            "budget_gb": args.budget_gb,
        }).rstrip("\n"))
    if args.trace:
        from .sim import save_trace

        save_trace(args.trace, result.timeline, result.usage,
                   process_name=f"multi-tenant {args.policy}",
                   spans=obs.spans.spans if obs is not None else None)
        print(f"wrote {args.trace}")
    finished = sum(1 for r in result.records
                   if r.state is JobState.FINISHED)
    return 0 if finished == len(result.records) else 1


def _cmd_serve(args) -> int:
    """Online inference serving: drain one open-loop scenario."""
    import json as _json

    from .hw import SystemConfig, gpu_preset
    from .serve import (ArrivalSpec, ArrivalSpecError, ServeConfig,
                        ServeConfigError, parse_models, serve_json,
                        serve_report, simulate_serving)
    from .serve.layering import ServePlanError

    try:
        arrivals = ArrivalSpec.parse(args.arrivals)
        models = tuple(parse_models(args.models))
    except ArrivalSpecError as exc:
        print(f"bad serving scenario: {exc}", file=sys.stderr)
        return 2
    try:
        budget = _parse_bytes(args.budget)
        window = _parse_bytes(args.window)
        pinned = _parse_bytes(args.pinned)
    except ValueError as exc:
        print(f"bad size: {exc}", file=sys.stderr)
        return 2
    try:
        faults = _parse_faults(args)
    except FaultSpecError as exc:
        print(f"bad fault spec: {exc}", file=sys.stderr)
        return 2
    system = PAPER_SYSTEM
    if args.gpu:
        try:
            system = SystemConfig(gpu=gpu_preset(args.gpu))
        except KeyError as exc:
            print(f"bad gpu preset: {exc.args[0]}", file=sys.stderr)
            return 2
    try:
        config = ServeConfig(
            models=models,
            arrivals=arrivals,
            requests=args.requests,
            budget_bytes=budget,
            slo_seconds=args.slo / 1e3,
            residency=args.residency,
            window_bytes=window,
            pinned_bytes=pinned,
            batch=args.batch,
            faults=faults if faults is not None else FaultSpec.none(),
            fault_seed=args.fault_seed,
        )
        result = simulate_serving(config, system=system)
    except (ServeConfigError, ServePlanError, ValueError) as exc:
        print(f"serving failed: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(_json.dumps(serve_json(result), sort_keys=True, indent=2))
    else:
        print(serve_report(result))
    if args.metrics:
        print()
        print(_render_metrics(result.obs, args.metrics, meta={
            "command": "serve", "arrivals": arrivals.label,
            "budget_bytes": budget,
        }).rstrip("\n"))
    if args.trace:
        from .sim import save_trace

        save_trace(args.trace, result.timeline,
                   process_name=f"serving {arrivals.label}",
                   spans=result.obs.spans.spans)
        print(f"wrote {args.trace}")
    return 0 if result.completed else 1


def _cmd_cluster(args) -> int:
    """Fleet simulation: place jobs across an N-GPU cluster topology.

    Exit-code contract: 0 when every job finished (and, under
    ``--verify``, every worker trace is sanitizer-clean), 1 otherwise,
    2 on usage errors.
    """
    from .cluster import (ClusterJob, cluster_report, schedule_fleet,
                          simulate_cluster_iteration, topology_table,
                          worker_results)
    from .hw import make_topology
    from .sched import JobState

    try:
        jobs = [
            ClusterJob.parse(spec, index)
            for index, spec in enumerate(args.jobs.split(","))
            if spec.strip()
        ]
    except (KeyError, ValueError) as exc:
        print(f"bad job spec: {exc}", file=sys.stderr)
        return 2
    if not jobs:
        print("no jobs given", file=sys.stderr)
        return 2
    budget = int(args.budget_gb * (1 << 30))
    if budget <= 0:
        print(f"budget must be positive, got {args.budget_gb} GB",
              file=sys.stderr)
        return 2
    try:
        topology = make_topology(args.topology, args.gpus)
    except (KeyError, ValueError) as exc:
        print(f"bad topology: {exc}", file=sys.stderr)
        return 2
    obs = _make_obs() if args.metrics else None
    try:
        result = schedule_fleet(
            jobs, topology=topology, placement=args.placement,
            budget_bytes=budget, arrival_rate=args.arrival_rate,
            seed=args.seed, preemption=not args.no_preempt, obs=obs,
        )
    except (KeyError, ValueError) as exc:
        print(f"cluster run failed: {exc}", file=sys.stderr)
        return 2

    if args.contention:
        # The acceptance lens: each gang's allreduce/offload contention
        # across every topology preset, independent of the schedule.
        gangs = sorted({
            (j.network, j.batch_size, j.num_gpus)
            for j in jobs if j.num_gpus > 1
        })
        for network, batch, gpus in gangs:
            reports = [
                simulate_cluster_iteration(
                    network, batch, gpus, make_topology(name, args.gpus))
                for name in ("pcie-switch", "nvlink-ring", "nvlink-mesh")
            ]
            print(topology_table(reports))
            print()

    print(cluster_report(result))

    clean = True
    if args.verify:
        print()
        checked = 0
        for record in result.records:
            gang = getattr(record.job, "num_gpus", 1)
            if record.state is not JobState.FINISHED or record.rung is None:
                continue
            for report in worker_results(
                    record.job.network, record.job.batch_size, gang,
                    topology, rung=record.rung):
                checked += 1
                clean = clean and report.ok
                status = "ok" if report.ok \
                    else f"{len(report.errors)} error(s)"
                print(f"  verify {report.subject}: {status}")
        print(f"{checked} worker trace(s) verified: "
              f"{'clean' if clean else 'ERRORS'}")

    if obs is not None:
        print()
        print(_render_metrics(obs, args.metrics, meta={
            "command": "cluster", "topology": topology.name,
            "gpus": topology.num_gpus, "placement": args.placement,
        }).rstrip("\n"))
    finished = sum(1 for r in result.records
                   if r.state is JobState.FINISHED)
    return 0 if finished == len(result.records) and clean else 1


def _cmd_faults(args) -> int:
    """Resilience probe: one faulted iteration, its recovery report."""
    from .analysis.verify import verify_result

    try:
        spec = FaultSpec.parse(args.spec)
    except FaultSpecError as exc:
        print(f"bad fault spec: {exc}", file=sys.stderr)
        return 2
    network = build(args.network, args.batch)
    result = evaluate(network, policy=args.policy, algo=args.algo,
                      verify=args.verify, faults=spec,
                      fault_seed=args.seed)
    report = result.fault_report

    if args.json:
        print(report.to_json(indent=2))
    else:
        clean = evaluate(network, policy=args.policy, algo=args.algo)
        goodput = (clean.total_time / result.total_time
                   if result.total_time > 0 else 0.0)
        rows = [
            ["fault spec", spec.label],
            ["seed", str(args.seed)],
            ["completed", "yes" if result.trainable else
             f"NO ({result.failure})"],
            ["faults injected", str(report.total_faults)],
            ["dma retries", str(report.retries)],
            ["recovery rate", f"{report.recovery_rate:.1%}"],
            ["iteration time", ms_str(result.total_time)],
            ["goodput vs fault-free", f"{goodput:.2f}x"],
        ]
        for outcome in sorted(report.outcomes):
            rows.append([f"  outcome: {outcome}",
                         str(report.outcomes[outcome])])
        print(format_table(
            ["metric", "value"], rows,
            title=f"{network.name} under {result.label} with faults",
        ))

    ok = result.trainable
    if args.verify:
        sanitizer = verify_result(result, network=network)
        print()
        print(sanitizer.render_text())
        ok = ok and sanitizer.ok
    if args.trace:
        from .sim import save_trace

        save_trace(args.trace, result.timeline, result.usage,
                   process_name=f"{network.name} faulted")
        print(f"wrote {args.trace}")
    return 0 if ok else 1


def _cmd_metrics(args) -> int:
    """One instrumented run, exported as pure Prometheus text or JSON.

    Unlike ``evaluate --metrics`` (report + export), this prints *only*
    the export, so the output can be scraped or diffed against the
    golden fixtures in ``tests/golden/``.
    """
    try:
        faults = _parse_faults(args)
    except FaultSpecError as exc:
        print(f"bad fault spec: {exc}", file=sys.stderr)
        return 2
    obs = _make_obs()

    if args.schedule:
        from .sched import Job, schedule_jobs

        try:
            jobs = [
                Job.parse(spec, index)
                for index, spec in enumerate(args.jobs.split(","))
                if spec.strip()
            ]
        except (KeyError, ValueError) as exc:
            print(f"bad job spec: {exc}", file=sys.stderr)
            return 2
        budget = int(args.budget_gb * (1 << 30))
        schedule_jobs(jobs, system=PAPER_SYSTEM, policy=args.sched_policy,
                      budget_bytes=budget, faults=faults,
                      fault_seed=args.fault_seed, obs=obs)
        meta = {"command": "schedule", "policy": args.sched_policy,
                "budget_gb": args.budget_gb,
                "fault_spec": faults.label if faults else ""}
    else:
        if not args.network:
            print("metrics: give a network or --schedule", file=sys.stderr)
            return 2
        network = build(args.network, args.batch)
        try:
            with _cache_observed(obs):
                evaluate(network, policy=args.policy, algo=args.algo,
                         faults=faults, fault_seed=args.fault_seed, obs=obs)
        except ValueError as exc:
            if faults is None:
                raise
            print(f"faults: {exc}", file=sys.stderr)
            return 2
        meta = {"command": "evaluate", "network": network.name,
                "policy": args.policy, "algo": args.algo,
                "fault_spec": faults.label if faults else ""}

    text = _render_metrics(obs, args.format, meta=meta)
    if not text.endswith("\n"):
        text += "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_verify(args) -> int:
    """Exit-code contract (both output formats): 0 when every report is
    free of errors (warnings do not fail the gate), 1 when any finding
    of error severity exists, 2 on usage errors.  The JSON payload's
    ``ok`` field mirrors the 0-vs-1 decision and ``rule_counts``
    aggregates findings per rule."""
    from .analysis.diagnostics import render_reports_json
    from .analysis.verify import (SWEEP_POLICIES, verify_point,
                                  verify_schedule, verify_zoo)

    mode = "static" if args.static else "hybrid" if args.hybrid \
        else "dynamic"
    reports = []
    if args.all_zoo:
        reports.extend(verify_zoo(batch=args.batch, jobs=args.jobs,
                                  mode=mode))
        if mode != "static":
            # The multi-tenant scheduler's shared-pool schedules, one
            # per admission policy over the headline workload.  Static
            # mode skips them: they exist only as simulation artifacts,
            # and --static promises to execute none.
            from .sched import Job, schedule_jobs

            jobs = [Job.parse(spec, index)
                    for index, spec in enumerate(DEFAULT_WORKLOAD.split(","))]
            for policy in ("fifo", "sjf", "best_fit"):
                result = schedule_jobs(jobs, system=PAPER_SYSTEM,
                                       policy=policy)
                reports.append(verify_schedule(result))
    elif args.network:
        from .analysis.static_plan import verify_point_static

        network = build(args.network, args.batch)
        points = [(args.policy, args.algo)] if args.policy \
            else list(SWEEP_POLICIES)
        for policy, algo in points:
            if mode == "dynamic":
                reports.append(verify_point(network, policy, algo))
            else:
                report = verify_point_static(network, policy, algo)
                if mode == "hybrid" and not report.ok:
                    report = verify_point(network, policy, algo)
                reports.append(report)
    else:
        print("verify: give a network or --all-zoo", file=sys.stderr)
        return 2

    ok = all(r.ok for r in reports)
    if args.format == "json":
        print(render_reports_json(reports))
    else:
        for report in reports:
            print(report.render_text())
        errors = sum(len(r.errors) for r in reports)
        warnings = sum(len(r.warnings) for r in reports)
        print(f"\n{len(reports)} schedule(s) verified: "
              f"{errors} error(s), {warnings} warning(s)")
    return 0 if ok else 1


def _cmd_profile(args) -> int:
    """cProfile any other repro invocation, then print a hotspot table.

    Runs the nested command through :func:`main` under
    :mod:`cProfile`, so the table covers exactly what the user-visible
    command does — plan compilation, simulation, rendering — with no
    import-time noise (imports resolve before the profiler starts).
    See docs/performance.md for how to read the output.
    """
    import cProfile
    import io
    import pstats

    argv = list(args.argv)
    if argv and argv[0] == "--":
        argv = argv[1:]
    if not argv:
        print("profile: missing nested command, e.g. "
              "repro profile evaluate vgg16 --policy all",
              file=sys.stderr)
        return 2
    if argv[0] == "profile":
        print("profile: cannot profile itself", file=sys.stderr)
        return 2

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = main(argv)
    finally:
        profiler.disable()

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    print(f"\n--- profile: {' '.join(argv)} "
          f"(top {args.top} by {args.sort}) ---")
    print(stream.getvalue().rstrip())
    return status


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="vDNN (MICRO 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("networks", help="list the network zoo")

    p_eval = sub.add_parser("evaluate", help="simulate one configuration")
    p_eval.add_argument("network", choices=available())
    p_eval.add_argument("--batch", type=int, default=None)
    p_eval.add_argument("--policy", default="dyn",
                        choices=["all", "conv", "comp", "none", "base",
                                 "dyn", "joint"])
    p_eval.add_argument("--algo", default="p", choices=["m", "p"])
    p_eval.add_argument("--faults", default=None,
                        help="fault spec, e.g. dma=0.1,pcie=0.5,jitter=0.2")
    p_eval.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the deterministic fault stream")
    p_eval.add_argument("--metrics", nargs="?", const="prom",
                        choices=["prom", "json"], default=None,
                        help="append the run's metrics export "
                             "(Prometheus text by default)")

    p_sweep = sub.add_parser("sweep", help="full policy sweep")
    p_sweep.add_argument("network", choices=available())
    p_sweep.add_argument("--batch", type=int, default=None)
    p_sweep.add_argument("--jobs", type=int, default=None,
                         help="worker processes for the sweep "
                              "(default $REPRO_JOBS or 1)")

    p_cap = sub.add_parser("capacity", help="max trainable batch per policy")
    p_cap.add_argument("network", choices=available())
    p_cap.add_argument("--batch", type=int, default=None)
    p_cap.add_argument("--limit", type=int, default=512)

    p_plan = sub.add_parser("plan", help="project a full training run")
    p_plan.add_argument("network", choices=available())
    p_plan.add_argument("--batch", type=int, default=None)
    p_plan.add_argument("--dataset-size", type=int, default=1_281_167)
    p_plan.add_argument("--epochs", type=int, default=74)

    p_fig = sub.add_parser("figures", help="regenerate paper figures")
    p_fig.add_argument("figure", nargs="?", default="all",
                       choices=["all", "fig01", "fig04", "fig05", "fig06",
                                "fig11", "fig12", "fig13", "fig14", "fig15",
                                "headline"])
    p_fig.add_argument("--out", default=None,
                       help="directory to write <figure>.txt files into")
    p_fig.add_argument("--jobs", type=int, default=None,
                       help="worker processes for sweep-backed figures "
                            "(default $REPRO_JOBS or 1)")

    p_demo = sub.add_parser("train-demo",
                            help="real numpy training under a policy")
    p_demo.add_argument("--policy", default="all",
                        choices=["none", "all", "conv"])
    p_demo.add_argument("--steps", type=int, default=5)
    p_demo.add_argument("--batch", type=int, default=8)

    p_sched = sub.add_parser(
        "schedule", help="pack concurrent training jobs onto one GPU")
    p_sched.add_argument(
        "--jobs", default=DEFAULT_WORKLOAD,
        help="comma-separated job specs, each network[:batch[:iterations]]")
    p_sched.add_argument("--policy", default="best_fit",
                         choices=["fifo", "sjf", "best_fit"])
    p_sched.add_argument("--budget-gb", type=float, default=12.0,
                         help="shared GPU memory budget in GiB")
    p_sched.add_argument("--trace", default=None,
                         help="write a Chrome trace with one lane per job")
    p_sched.add_argument("--faults", default=None,
                         help="fault spec with timed events, e.g. "
                              "shrink@10=0.5,evict@5=vgg16#1")
    p_sched.add_argument("--fault-seed", type=int, default=0,
                         help="seed recorded on the fault report")
    p_sched.add_argument("--metrics", nargs="?", const="prom",
                         choices=["prom", "json"], default=None,
                         help="append the schedule's metrics export "
                              "(Prometheus text by default)")

    p_serve = sub.add_parser(
        "serve", help="online inference serving with demand layering")
    p_serve.add_argument("--arrivals", default="poisson:rate=100,seed=0",
                         help="arrival spec: poisson:rate=200,seed=7 | "
                              "trace:times=0;0.1;.. | diurnal:.. | burst:..")
    p_serve.add_argument("--models", default="vgg16,googlenet,alexnet",
                         help="comma-separated name[:priority] model list")
    p_serve.add_argument("--budget", default="4GiB",
                         help="device memory budget (e.g. 4GiB, 512MiB)")
    p_serve.add_argument("--slo", type=float, default=250.0,
                         help="latency SLO in milliseconds")
    p_serve.add_argument("--residency", default="auto",
                         choices=["auto", "resident", "layered", "pinned"],
                         help="weight residency policy (auto = fair-share "
                              "heuristic per model)")
    p_serve.add_argument("--window", default="64MiB",
                         help="demand-layering sliding window size")
    p_serve.add_argument("--pinned", default="128MiB",
                         help="on-device weight budget for --residency "
                              "pinned")
    p_serve.add_argument("--requests", type=int, default=500,
                         help="request-stream length to generate")
    p_serve.add_argument("--batch", type=int, default=1,
                         help="per-request batch size")
    p_serve.add_argument("--gpu", default=None,
                         help="GPU preset: titanx, hbm, jetson")
    p_serve.add_argument("--metrics", nargs="?", const="prom",
                         choices=["prom", "json"], default=None,
                         help="append the run's metrics export")
    p_serve.add_argument("--trace", default=None,
                         help="write a Chrome trace with one lane per "
                              "model")
    p_serve.add_argument("--faults", default=None,
                         help="fault spec, e.g. dma=0.1,pcie=0.5,"
                              "shrink@10=0.5,evict@5=vgg16")
    p_serve.add_argument("--fault-seed", type=int, default=0)
    p_serve.add_argument("--format", choices=["table", "json"],
                         default="table",
                         help="report rendering (json = stable schema)")

    p_cluster = sub.add_parser(
        "cluster", help="fleet scheduling across an N-GPU topology")
    p_cluster.add_argument(
        "--jobs", default=DEFAULT_CLUSTER_WORKLOAD,
        help="comma-separated job specs, each "
             "network[:batch[:iterations[:gpus]]] (gpus > 1 = "
             "data-parallel gang with ring allreduce)")
    p_cluster.add_argument("--topology", default="pcie-switch",
                           choices=["pcie-switch", "nvlink-ring",
                                    "nvlink-mesh"],
                           help="cluster interconnect preset")
    p_cluster.add_argument("--gpus", type=int, default=4,
                           help="GPUs in the cluster")
    p_cluster.add_argument("--placement", default="bin_pack",
                           choices=["bin_pack", "spread"],
                           help="GPU placement policy")
    p_cluster.add_argument("--budget-gb", type=float, default=12.0,
                           help="per-GPU memory budget in GiB")
    p_cluster.add_argument("--arrival-rate", type=float, default=0.0,
                           help="Poisson arrival rate in jobs/s "
                                "(0 = all jobs arrive at t=0)")
    p_cluster.add_argument("--seed", type=int, default=0,
                           help="seed for the deterministic arrival "
                                "stream")
    p_cluster.add_argument("--no-preempt", action="store_true",
                           help="disable priority preempt-and-migrate")
    p_cluster.add_argument("--contention", action="store_true",
                           help="also print each gang's allreduce/offload "
                                "contention across every topology preset")
    p_cluster.add_argument("--verify", action="store_true",
                           help="run the schedule sanitizer on every "
                                "worker's trace")
    p_cluster.add_argument("--metrics", nargs="?", const="prom",
                           choices=["prom", "json"], default=None,
                           help="append the run's metrics export")

    p_faults = sub.add_parser(
        "faults", help="simulate under deterministic fault injection")
    p_faults.add_argument("network", choices=available())
    p_faults.add_argument("--batch", type=int, default=None)
    p_faults.add_argument("--policy", default="all",
                          choices=["all", "conv", "comp", "dyn"])
    p_faults.add_argument("--algo", default="p", choices=["m", "p"])
    p_faults.add_argument("--spec",
                          default="dma=0.05,pcie=0.7,jitter=0.1",
                          help="fault spec (see docs/architecture.md)")
    p_faults.add_argument("--seed", type=int, default=0,
                          help="seed for the deterministic fault stream")
    p_faults.add_argument("--json", action="store_true",
                          help="print the FaultReport as JSON")
    p_faults.add_argument("--verify", action="store_true",
                          help="run the schedule sanitizer on the "
                               "faulted trace")
    p_faults.add_argument("--trace", default=None,
                          help="write a Chrome trace of the faulted run")

    p_metrics = sub.add_parser(
        "metrics", help="instrumented run, metrics-only export")
    p_metrics.add_argument("network", nargs="?", choices=available(),
                           help="network to evaluate (omit with --schedule)")
    p_metrics.add_argument("--batch", type=int, default=None)
    p_metrics.add_argument("--policy", default="dyn",
                           choices=["all", "conv", "comp", "none", "base",
                                    "dyn", "joint"])
    p_metrics.add_argument("--algo", default="p", choices=["m", "p"])
    p_metrics.add_argument("--faults", default=None,
                           help="fault spec, e.g. dma=0.1,pcie=0.5")
    p_metrics.add_argument("--fault-seed", type=int, default=0)
    p_metrics.add_argument("--schedule", action="store_true",
                           help="instrument a multi-tenant schedule "
                                "instead of one evaluation")
    p_metrics.add_argument("--jobs", default=DEFAULT_WORKLOAD,
                           help="job specs for --schedule (same syntax "
                                "as the schedule command)")
    p_metrics.add_argument("--sched-policy", default="best_fit",
                           choices=["fifo", "sjf", "best_fit"],
                           help="admission policy for --schedule")
    p_metrics.add_argument("--budget-gb", type=float, default=12.0,
                           help="memory budget for --schedule")
    p_metrics.add_argument("--format", choices=["prom", "json"],
                           default="prom")
    p_metrics.add_argument("--out", default=None,
                           help="write the export to a file instead of "
                                "stdout")

    p_prof = sub.add_parser(
        "profile", help="cProfile another repro invocation")
    p_prof.add_argument("--top", type=int, default=25,
                        help="rows of the hotspot table to print")
    p_prof.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort key for the table")
    p_prof.add_argument("argv", nargs=argparse.REMAINDER,
                        help="the repro command to profile, e.g. "
                             "evaluate vgg16 --policy all")

    p_verify = sub.add_parser(
        "verify", help="run the schedule sanitizer over simulated plans")
    p_verify.add_argument("network", nargs="?", choices=available(),
                          help="verify one network (default: whole sweep "
                               "grid for it)")
    p_verify.add_argument("--batch", type=int, default=None)
    p_verify.add_argument("--policy", default=None,
                          choices=["all", "conv", "comp", "none", "base",
                                   "dyn", "joint"],
                          help="verify one policy point instead of the grid")
    p_verify.add_argument("--algo", default="p", choices=["m", "p"])
    p_verify.add_argument("--all-zoo", action="store_true",
                          help="verify every zoo network x policy point "
                               "plus the multi-tenant schedules")
    p_verify.add_argument("--jobs", type=int, default=1,
                          help="worker processes for the sweep")
    verify_mode = p_verify.add_mutually_exclusive_group()
    verify_mode.add_argument("--static", action="store_true",
                             help="prove the SP4xx invariants by abstract "
                                  "interpretation of the compiled plans; "
                                  "no simulation executes")
    verify_mode.add_argument("--hybrid", action="store_true",
                             help="static sweep first, dynamic "
                                  "re-verification only for points the "
                                  "static pass could not certify")
    p_verify.add_argument("--format", choices=["text", "json"],
                          default="text")

    return parser


_COMMANDS = {
    "networks": _cmd_networks,
    "evaluate": _cmd_evaluate,
    "sweep": _cmd_sweep,
    "capacity": _cmd_capacity,
    "plan": _cmd_plan,
    "figures": _cmd_figures,
    "train-demo": _cmd_train_demo,
    "schedule": _cmd_schedule,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
    "verify": _cmd_verify,
    "faults": _cmd_faults,
    "metrics": _cmd_metrics,
    "profile": _cmd_profile,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

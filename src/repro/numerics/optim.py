"""Optimizers for the functional training runtime.

Optimizer *state* is persistent device memory the paper's accounting
folds into "weights": momentum doubles the per-parameter overhead and
Adam triples it — which is why :meth:`state_bytes` exists on every
optimizer here.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .ops import DTYPE


class SGD:
    """Stochastic gradient descent with momentum and weight decay.

    The paper trains with plain SGD; momentum and (decoupled-from-loss,
    L2-style) weight decay are included because every framework it
    compares against defaults to them, and momentum costs one extra
    persistent buffer per parameter — a memory effect worth testing.
    """

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.learning_rate = DTYPE(learning_rate)
        self.momentum = DTYPE(momentum)
        self.weight_decay = DTYPE(weight_decay)
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        """Update one parameter tensor in place."""
        if param.shape != grad.shape:
            raise ValueError(
                f"shape mismatch updating {key!r}: {param.shape} vs {grad.shape}"
            )
        if self.weight_decay > 0:
            grad = grad + self.weight_decay * param
        if self.momentum > 0:
            velocity = self._velocity.get(key)
            if velocity is None:
                velocity = np.zeros_like(param)
                self._velocity[key] = velocity
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            param += velocity
        else:
            param -= self.learning_rate * grad

    def state_bytes(self) -> int:
        return sum(v.nbytes for v in self._velocity.values())


class Adam:
    """Adam (Kingma & Ba, 2015) — two persistent state buffers per
    parameter, i.e. 3x the baseline's per-weight memory once gradients
    are counted."""

    def __init__(self, learning_rate: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, epsilon: float = 1e-8):
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t: Dict[str, int] = {}

    def step(self, key: str, param: np.ndarray, grad: np.ndarray) -> None:
        """Update one parameter tensor in place."""
        if param.shape != grad.shape:
            raise ValueError(
                f"shape mismatch updating {key!r}: {param.shape} vs {grad.shape}"
            )
        m = self._m.setdefault(key, np.zeros_like(param))
        v = self._v.setdefault(key, np.zeros_like(param))
        t = self._t.get(key, 0) + 1
        self._t[key] = t

        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad * grad
        m_hat = m / (1.0 - self.beta1 ** t)
        v_hat = v / (1.0 - self.beta2 ** t)
        param -= (self.learning_rate * m_hat
                  / (np.sqrt(v_hat) + self.epsilon)).astype(param.dtype)

    def state_bytes(self) -> int:
        return sum(b.nbytes for b in self._m.values()) + \
            sum(b.nbytes for b in self._v.values())

"""Numpy kernels for every layer type, with cuDNN-faithful data contracts.

The backward functions take *only* the tensors the paper's liveness
story says are available at that point — e.g. ReLU backward uses (Y, dY)
but never X, because vDNN runs ACTV layers in-place and X is gone; max
pooling backward needs (X, Y, dY), which is exactly why POOL inputs are
offload candidates.  The functional runtime combines these kernels with
the same :class:`~repro.core.liveness.LivenessAnalysis` the simulator
uses, so an offload/release bug would surface as a hard numerical error.

Convolutions are implemented by explicit im2col lowering (the ``GEMM``
algorithm of cuDNN); everything is float32 throughout and fully
deterministic, which is what lets tests demand *bitwise* equality of
training under different memory managers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

DTYPE = np.float32


# ----------------------------------------------------------------------
# Convolution (im2col GEMM)
# ----------------------------------------------------------------------
def _im2col(x: np.ndarray, kernel: int, stride: int, pad: int,
            oh: int, ow: int) -> np.ndarray:
    """Lower NCHW input into a (N, C*k*k, oh*ow) column tensor."""
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((n, c, kernel, kernel, oh, ow), dtype=x.dtype)
    for i in range(kernel):
        i_end = i + stride * oh
        for j in range(kernel):
            j_end = j + stride * ow
            cols[:, :, i, j, :, :] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(n, c * kernel * kernel, oh * ow)


def _col2im(cols: np.ndarray, x_shape: Tuple[int, ...], kernel: int,
            stride: int, pad: int, oh: int, ow: int) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter-add columns back to NCHW."""
    n, c, h, w = x_shape
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    cols = cols.reshape(n, c, kernel, kernel, oh, ow)
    for i in range(kernel):
        i_end = i + stride * oh
        for j in range(kernel):
            j_end = j + stride * ow
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


def conv2d_forward(
    x: np.ndarray, w: np.ndarray, b: Optional[np.ndarray],
    stride: int, pad: int,
) -> np.ndarray:
    """Y = conv(X, W) + b for NCHW input and OIHW weights."""
    n, c, h, w_in = x.shape
    k, _, kernel, _ = w.shape
    oh = (h + 2 * pad - kernel) // stride + 1
    ow = (w_in + 2 * pad - kernel) // stride + 1
    cols = _im2col(x, kernel, stride, pad, oh, ow)
    y = np.einsum("kp,npq->nkq", w.reshape(k, -1), cols, dtype=DTYPE)
    y = y.reshape(n, k, oh, ow).astype(DTYPE, copy=False)
    if b is not None:
        y += b.reshape(1, k, 1, 1)
    return y


def conv2d_backward(
    x: np.ndarray, w: np.ndarray, dy: np.ndarray,
    stride: int, pad: int, bias: bool = True,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """(dX, dW, db) from (X, W, dY) — the reads that force X to survive."""
    n, c, h, w_in = x.shape
    k, _, kernel, _ = w.shape
    _, _, oh, ow = dy.shape
    cols = _im2col(x, kernel, stride, pad, oh, ow)
    dy_mat = dy.reshape(n, k, oh * ow)
    dw = np.einsum("nkq,npq->kp", dy_mat, cols, dtype=DTYPE).reshape(w.shape)
    dcols = np.einsum("kp,nkq->npq", w.reshape(k, -1), dy_mat, dtype=DTYPE)
    dx = _col2im(dcols, x.shape, kernel, stride, pad, oh, ow)
    db = dy.sum(axis=(0, 2, 3), dtype=DTYPE) if bias else None
    return dx.astype(DTYPE, copy=False), dw.astype(DTYPE, copy=False), db


# ----------------------------------------------------------------------
# Activations (in-place contract: backward sees only Y and dY)
# ----------------------------------------------------------------------
def relu_forward(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0, dtype=DTYPE)


def relu_backward(y: np.ndarray, dy: np.ndarray) -> np.ndarray:
    return (dy * (y > 0)).astype(DTYPE, copy=False)


def sigmoid_forward(x: np.ndarray) -> np.ndarray:
    return (1.0 / (1.0 + np.exp(-x))).astype(DTYPE, copy=False)


def sigmoid_backward(y: np.ndarray, dy: np.ndarray) -> np.ndarray:
    return (dy * y * (1.0 - y)).astype(DTYPE, copy=False)


def tanh_forward(x: np.ndarray) -> np.ndarray:
    return np.tanh(x).astype(DTYPE, copy=False)


def tanh_backward(y: np.ndarray, dy: np.ndarray) -> np.ndarray:
    return (dy * (1.0 - y * y)).astype(DTYPE, copy=False)


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def _pool_windows(h: int, w: int, kernel: int, stride: int, pad: int,
                  oh: int, ow: int):
    for oi in range(oh):
        hs = oi * stride - pad
        for oj in range(ow):
            ws = oj * stride - pad
            yield (oi, oj,
                   max(hs, 0), min(hs + kernel, h),
                   max(ws, 0), min(ws + kernel, w))


def maxpool_forward(x: np.ndarray, kernel: int, stride: int, pad: int,
                    oh: int, ow: int) -> np.ndarray:
    n, c, h, w = x.shape
    y = np.empty((n, c, oh, ow), dtype=DTYPE)
    for oi, oj, h0, h1, w0, w1 in _pool_windows(h, w, kernel, stride, pad, oh, ow):
        y[:, :, oi, oj] = x[:, :, h0:h1, w0:w1].max(axis=(2, 3))
    return y


def maxpool_backward(x: np.ndarray, y: np.ndarray, dy: np.ndarray,
                     kernel: int, stride: int, pad: int) -> np.ndarray:
    """dX from (X, Y, dY): route each dY element to its argmax position."""
    n, c, h, w = x.shape
    _, _, oh, ow = dy.shape
    dx = np.zeros_like(x, dtype=DTYPE)
    for oi, oj, h0, h1, w0, w1 in _pool_windows(h, w, kernel, stride, pad, oh, ow):
        window = x[:, :, h0:h1, w0:w1]
        mask = window == y[:, :, oi, oj][:, :, None, None]
        dx[:, :, h0:h1, w0:w1] += mask * dy[:, :, oi, oj][:, :, None, None]
    return dx


def avgpool_forward(x: np.ndarray, kernel: int, stride: int, pad: int,
                    oh: int, ow: int) -> np.ndarray:
    n, c, h, w = x.shape
    y = np.empty((n, c, oh, ow), dtype=DTYPE)
    for oi, oj, h0, h1, w0, w1 in _pool_windows(h, w, kernel, stride, pad, oh, ow):
        y[:, :, oi, oj] = x[:, :, h0:h1, w0:w1].mean(axis=(2, 3), dtype=DTYPE)
    return y


def avgpool_backward(x_shape: Tuple[int, ...], dy: np.ndarray,
                     kernel: int, stride: int, pad: int) -> np.ndarray:
    n, c, h, w = x_shape
    _, _, oh, ow = dy.shape
    dx = np.zeros(x_shape, dtype=DTYPE)
    for oi, oj, h0, h1, w0, w1 in _pool_windows(h, w, kernel, stride, pad, oh, ow):
        area = (h1 - h0) * (w1 - w0)
        dx[:, :, h0:h1, w0:w1] += (dy[:, :, oi, oj] / area)[:, :, None, None]
    return dx


# ----------------------------------------------------------------------
# Local response normalization (cross-channel, AlexNet formula)
# ----------------------------------------------------------------------
def _lrn_scale(x: np.ndarray, local_size: int, alpha: float, k: float) -> np.ndarray:
    c = x.shape[1]
    half = local_size // 2
    squares = x * x
    scale = np.full_like(x, k, dtype=DTYPE)
    for offset in range(-half, half + 1):
        lo, hi = max(0, -offset), min(c, c - offset)
        scale[:, lo:hi] += (alpha / local_size) * squares[:, lo + offset:hi + offset]
    return scale


def lrn_forward(x: np.ndarray, local_size: int, alpha: float, beta: float,
                k: float) -> np.ndarray:
    scale = _lrn_scale(x, local_size, alpha, k)
    return (x * scale ** (-beta)).astype(DTYPE, copy=False)


def lrn_backward(x: np.ndarray, y: np.ndarray, dy: np.ndarray,
                 local_size: int, alpha: float, beta: float, k: float) -> np.ndarray:
    """dX from (X, Y, dY) — cuDNN's LRN backward signature."""
    c = x.shape[1]
    half = local_size // 2
    scale = _lrn_scale(x, local_size, alpha, k)
    ratio = dy * y / scale  # shared cross-channel term
    dx = dy * scale ** (-beta)
    accum = np.zeros_like(x, dtype=DTYPE)
    for offset in range(-half, half + 1):
        lo, hi = max(0, -offset), min(c, c - offset)
        accum[:, lo:hi] += ratio[:, lo + offset:hi + offset]
    dx -= (2.0 * alpha * beta / local_size) * x * accum
    return dx.astype(DTYPE, copy=False)


# ----------------------------------------------------------------------
# Fully connected
# ----------------------------------------------------------------------
def fc_forward(x: np.ndarray, w: np.ndarray, b: Optional[np.ndarray]) -> np.ndarray:
    flat = x.reshape(x.shape[0], -1)
    y = flat @ w.T
    if b is not None:
        y = y + b
    return y.astype(DTYPE, copy=False)


def fc_backward(
    x: np.ndarray, w: np.ndarray, dy: np.ndarray, bias: bool = True
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    flat = x.reshape(x.shape[0], -1)
    dw = (dy.T @ flat).astype(DTYPE, copy=False)
    dx = (dy @ w).reshape(x.shape).astype(DTYPE, copy=False)
    db = dy.sum(axis=0, dtype=DTYPE) if bias else None
    return dx, dw, db


# ----------------------------------------------------------------------
# Dropout (mask regenerated from the seed — zero extra device memory)
# ----------------------------------------------------------------------
def dropout_mask(shape: Tuple[int, ...], rate: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    keep = (rng.random(shape) >= rate).astype(DTYPE)
    return keep / DTYPE(1.0 - rate)


def dropout_forward(x: np.ndarray, rate: float, seed: int,
                    training: bool = True) -> np.ndarray:
    if not training or rate == 0.0:
        return x.astype(DTYPE, copy=False)
    return (x * dropout_mask(x.shape, rate, seed)).astype(DTYPE, copy=False)


def dropout_backward(dy: np.ndarray, rate: float, seed: int,
                     training: bool = True) -> np.ndarray:
    if not training or rate == 0.0:
        return dy.astype(DTYPE, copy=False)
    return (dy * dropout_mask(dy.shape, rate, seed)).astype(DTYPE, copy=False)


# ----------------------------------------------------------------------
# Channel slice (timestep selection in unrolled RNNs)
# ----------------------------------------------------------------------
def slice_forward(x: np.ndarray, begin: int, end: int) -> np.ndarray:
    return np.ascontiguousarray(x[:, begin:end]).astype(DTYPE, copy=False)


def slice_backward(x_shape: Tuple[int, ...], dy: np.ndarray,
                   begin: int, end: int) -> np.ndarray:
    dx = np.zeros(x_shape, dtype=DTYPE)
    dx[:, begin:end] = dy
    return dx


# ----------------------------------------------------------------------
# Element-wise add (ResNet shortcut joins)
# ----------------------------------------------------------------------
def eltwise_add_forward(inputs: Sequence[np.ndarray]) -> np.ndarray:
    total = inputs[0].astype(DTYPE, copy=True)
    for other in inputs[1:]:
        total += other
    return total


# ----------------------------------------------------------------------
# Element-wise multiply (LSTM/GRU gating): backward reads both operands
# ----------------------------------------------------------------------
def eltwise_mul_forward(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a * b).astype(DTYPE, copy=False)


def eltwise_mul_backward(
    a: np.ndarray, b: np.ndarray, dy: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    return ((dy * b).astype(DTYPE, copy=False),
            (dy * a).astype(DTYPE, copy=False))


# ----------------------------------------------------------------------
# Batch normalization (per-channel, batch statistics)
# ----------------------------------------------------------------------
def _bn_axes(x: np.ndarray) -> Tuple[int, ...]:
    return (0,) + tuple(range(2, x.ndim))


def batchnorm_forward(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, epsilon: float
) -> np.ndarray:
    """y = gamma * (x - mean) / sqrt(var + eps) + beta, batch statistics.

    Uses the current batch's statistics in both training and inference
    (no running averages) — sufficient here, where BN exists to exercise
    the memory manager on a backward pass that genuinely re-reads X.
    """
    axes = _bn_axes(x)
    mean = x.mean(axis=axes, keepdims=True, dtype=np.float32)
    var = x.var(axis=axes, keepdims=True, dtype=np.float32)
    inv_std = 1.0 / np.sqrt(var + epsilon)
    shape = (1, -1) + (1,) * (x.ndim - 2)
    xhat = (x - mean) * inv_std
    return (gamma.reshape(shape) * xhat + beta.reshape(shape)).astype(
        DTYPE, copy=False
    )


def batchnorm_backward(
    x: np.ndarray, gamma: np.ndarray, dy: np.ndarray, epsilon: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(dX, dgamma, dbeta) from (X, gamma, dY) — cuDNN's BN signature."""
    axes = _bn_axes(x)
    count = x.size // x.shape[1]
    mean = x.mean(axis=axes, keepdims=True, dtype=np.float32)
    var = x.var(axis=axes, keepdims=True, dtype=np.float32)
    inv_std = 1.0 / np.sqrt(var + epsilon)
    xhat = (x - mean) * inv_std

    dgamma = (dy * xhat).sum(axis=axes, dtype=np.float32)
    dbeta = dy.sum(axis=axes, dtype=np.float32)

    shape = (1, -1) + (1,) * (x.ndim - 2)
    dxhat = dy * gamma.reshape(shape)
    dx = (inv_std / count) * (
        count * dxhat
        - dxhat.sum(axis=axes, keepdims=True)
        - xhat * (dxhat * xhat).sum(axis=axes, keepdims=True)
    )
    return (dx.astype(DTYPE, copy=False),
            dgamma.astype(DTYPE, copy=False),
            dbeta.astype(DTYPE, copy=False))


# ----------------------------------------------------------------------
# Concat / split (GoogLeNet joins)
# ----------------------------------------------------------------------
def concat_forward(inputs: Sequence[np.ndarray]) -> np.ndarray:
    return np.concatenate(list(inputs), axis=1).astype(DTYPE, copy=False)


def concat_backward(dy: np.ndarray, channel_counts: Sequence[int]) -> List[np.ndarray]:
    splits = np.cumsum(channel_counts)[:-1]
    return [part.astype(DTYPE, copy=False) for part in np.split(dy, splits, axis=1)]


# ----------------------------------------------------------------------
# Softmax + cross-entropy
# ----------------------------------------------------------------------
def softmax_forward(x: np.ndarray) -> np.ndarray:
    flat = x.reshape(x.shape[0], -1)
    shifted = flat - flat.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return (exp / exp.sum(axis=1, keepdims=True)).reshape(x.shape).astype(
        DTYPE, copy=False
    )


def cross_entropy_loss(probs: np.ndarray, labels: np.ndarray) -> float:
    flat = probs.reshape(probs.shape[0], -1)
    picked = flat[np.arange(flat.shape[0]), labels]
    return float(-np.log(np.maximum(picked, 1e-12)).mean())


def softmax_cross_entropy_backward(probs: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """d(loss)/d(logits), folded through the softmax: (p - onehot)/N."""
    flat = probs.reshape(probs.shape[0], -1).copy()
    flat[np.arange(flat.shape[0]), labels] -= 1.0
    flat /= flat.shape[0]
    return flat.reshape(probs.shape).astype(DTYPE, copy=False)

"""Learnable synthetic datasets for end-to-end training demos.

The paper trains on ImageNet, which is not shippable here; these
generators produce small image-classification problems with real visual
structure — a bright blob whose *location* determines the class — that
a small CNN genuinely learns in a few dozen SGD steps.  They exist so
examples and tests can show accuracy *improving* under a memory-managed
runtime, not just losses matching.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .ops import DTYPE


def blob_batch(
    batch: int,
    image_size: int = 16,
    num_classes: int = 4,
    seed: int = 0,
    noise: float = 0.3,
) -> Tuple[np.ndarray, np.ndarray]:
    """One (images, labels) batch of the quadrant-blob task.

    Each image is Gaussian noise plus a bright 2-D Gaussian blob whose
    quadrant (for ``num_classes=4``) or angular sector (otherwise)
    encodes the label.

    Returns:
        images: float32 (batch, 3, image_size, image_size);
        labels: int labels in [0, num_classes).
    """
    if num_classes < 2:
        raise ValueError("need at least two classes")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=batch)
    images = (rng.standard_normal((batch, 3, image_size, image_size))
              * noise).astype(DTYPE)

    ys, xs = np.mgrid[0:image_size, 0:image_size]
    for i, label in enumerate(labels):
        angle = 2 * np.pi * (label + 0.5) / num_classes
        radius = image_size / 4
        cy = image_size / 2 + radius * np.sin(angle)
        cx = image_size / 2 + radius * np.cos(angle)
        blob = np.exp(-(((ys - cy) ** 2 + (xs - cx) ** 2)
                        / (2.0 * (image_size / 8) ** 2)))
        images[i] += blob.astype(DTYPE)
    return images, labels


def blob_stream(
    batch: int,
    image_size: int = 16,
    num_classes: int = 4,
    seed: int = 0,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Infinite deterministic stream of blob batches."""
    step = 0
    while True:
        yield blob_batch(batch, image_size, num_classes,
                         seed=seed * 1_000_003 + step)
        step += 1


def accuracy(probs: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy of a probability batch."""
    predictions = probs.reshape(probs.shape[0], -1).argmax(axis=1)
    return float((predictions == labels).mean())


def top_k_accuracy(probs: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy of a probability batch."""
    flat = probs.reshape(probs.shape[0], -1)
    if k >= flat.shape[1]:
        return 1.0
    top = np.argpartition(flat, -k, axis=1)[:, -k:]
    hits = (top == labels[:, None]).any(axis=1)
    return float(hits.mean())

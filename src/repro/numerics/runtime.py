"""Functional training runtime: real numpy training under a memory manager.

This is the proof that the vDNN mechanism is *correct*, not only fast on
paper: a :class:`TrainingRuntime` executes forward/backward passes with
real numpy buffers in a byte-budgeted :class:`~repro.numerics.heap.DeviceHeap`,
driven by the **same** liveness analysis, transfer policy and Figure-10
prefetcher as the performance simulator.  Offloaded feature maps really
leave the device heap (and really come back), released buffers are really
gone, and gradients for fork/join topologies really accumulate — so the
tests can demand that training under ``vDNN_all`` is *bitwise identical*
to training with everything resident, while using a fraction of the
device budget.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from ..core.liveness import LivenessAnalysis, StorageInfo
from ..core.policy import TransferPolicy
from ..core.prefetcher import PrefetchState, find_prefetch_layer
from ..graph.layer import (
    Activation,
    ActivationKind,
    BatchNorm,
    Concat,
    Conv2D,
    Dropout,
    EltwiseAdd,
    EltwiseMul,
    FullyConnected,
    LayerKind,
    LRN,
    Pool2D,
    PoolMode,
    Slice,
)
from ..graph.network import Network, NetworkNode
from . import ops
from .heap import DeviceHeap, HostHeap
from .initializers import init_bias, init_weight
from .optim import SGD


@dataclass
class StepResult:
    """Metrics from one training step."""

    loss: float
    device_peak_bytes: int
    device_live_bytes: int
    host_peak_bytes: int
    offload_count: int
    prefetch_count: int
    demand_fetch_count: int


@dataclass
class _StepState:
    """Per-step transient bookkeeping."""

    offloaded_at: Dict[int, List[StorageInfo]] = field(default_factory=dict)
    prefetch_flags: Optional[PrefetchState] = None
    initialized_gradients: Set[int] = field(default_factory=set)
    demand_fetches: int = 0


def _activation_ops(kind: ActivationKind):
    return {
        ActivationKind.RELU: (ops.relu_forward, ops.relu_backward),
        ActivationKind.SIGMOID: (ops.sigmoid_forward, ops.sigmoid_backward),
        ActivationKind.TANH: (ops.tanh_forward, ops.tanh_backward),
    }[kind]


class TrainingRuntime:
    """Trains a network with numpy under a device-memory budget.

    Args:
        network: the DNN (must end in a Softmax layer for training).
        policy: vDNN transfer policy; :meth:`TransferPolicy.none` keeps
            everything resident (the baseline behaviour).
        device_budget_bytes: hard cap on simultaneous device bytes;
            ``None`` means effectively unlimited.
        host_budget_bytes: cap on offloaded (pinned) bytes.
        seed: controls weight init, synthetic dropout masks.
        learning_rate / momentum: SGD hyperparameters.
    """

    def __init__(
        self,
        network: Network,
        policy: Optional[TransferPolicy] = None,
        device_budget_bytes: Optional[int] = None,
        host_budget_bytes: Optional[int] = None,
        seed: int = 0,
        learning_rate: float = 0.01,
        momentum: float = 0.0,
        recompute_segments: Optional[int] = None,
        optimizer=None,
    ):
        self.network = network
        self.policy = policy or TransferPolicy.none()
        self.liveness = LivenessAnalysis(network)
        self.device = DeviceHeap(device_budget_bytes or (1 << 50))
        self.host = HostHeap(host_budget_bytes)
        # Any object with step(key, param, grad) works (SGD, Adam, ...).
        self.optimizer = optimizer if optimizer is not None \
            else SGD(learning_rate, momentum)
        self.seed = seed
        self.step_count = 0
        self.recompute_count = 0
        self._dead_resident: Set[int] = set()
        self._plan_recompute(recompute_segments)

        output = network.output_node
        if output.kind is not LayerKind.SOFTMAX:
            raise ValueError(
                f"training requires a terminal Softmax layer, the network "
                f"ends in {output.kind.value}"
            )

        # Persistent parameters and their gradient buffers.  Weight-tied
        # layers own nothing: they read (and accumulate into) their
        # root's buffers.
        for node in network:
            if node.is_weight_tied:
                continue
            weight = init_weight(node, seed)
            if weight is not None:
                self.device.store(self._wkey(node.index), weight)
                self.device.store(self._dwkey(node.index), np.zeros_like(weight))
            bias = init_bias(node, seed)
            if bias is not None:
                self.device.store(self._bkey(node.index), bias)
                self.device.store(self._dbkey(node.index), np.zeros_like(bias))
        self._persistent_keys = set(self.device.keys)

    def _plan_recompute(self, recompute_segments: Optional[int]) -> None:
        """Pick sqrt(L)-style checkpoints when recomputation is enabled.

        Gradient checkpointing drops non-checkpoint feature-extraction
        storages after their last forward use and regenerates them by
        replaying forward kernels during backward propagation.

        It composes with an offloading policy (the hybrid explored by
        the SuperNeurons follow-up): storages the policy offloads are
        excluded from dropping — each buffer is either moved to host
        memory *or* recomputed, never both — and recompute replays
        prefetch any offloaded inputs they flow through.
        """
        import math

        self._dropped: Set[int] = set()
        self._droppable_order: List[int] = []
        if recompute_segments is None:
            return
        offloaded_owners = {
            s.owner for s in self.liveness.all_storages()
            if s.needed_backward and self.policy.wants_offload(
                self.network[s.forward_release_at])
        }
        droppable = [
            s for s in self.liveness.all_storages()
            if s.needed_backward
            and s.owner not in offloaded_owners
            and self.network[s.owner].is_feature_extraction
            and self.network[s.owner].kind is not LayerKind.INPUT
        ]
        droppable.sort(key=lambda s: s.owner)
        count = len(droppable)
        segments = max(1, recompute_segments) if recompute_segments > 0 \
            else max(1, math.isqrt(count))
        stride = max(1, -(-count // segments))
        self._droppable_order = [s.owner for s in droppable]
        self._dropped = {
            s.owner for i, s in enumerate(droppable) if i % stride != 0
        }

    # -- key helpers -----------------------------------------------------
    @staticmethod
    def _ykey(owner: int) -> str:
        return f"Y{owner}"

    @staticmethod
    def _gkey(owner: int) -> str:
        return f"G{owner}"

    @staticmethod
    def _wkey(index: int) -> str:
        return f"W{index}"

    @staticmethod
    def _bkey(index: int) -> str:
        return f"B{index}"

    @staticmethod
    def _dwkey(index: int) -> str:
        return f"dW{index}"

    @staticmethod
    def _dbkey(index: int) -> str:
        return f"dB{index}"

    def _weight_index(self, node: NetworkNode) -> int:
        """Resolve weight tying: the index whose W/B buffers this
        layer's kernels read and whose dW/dB its gradients feed."""
        return node.weight_root

    def _dropout_seed(self, node: NetworkNode) -> int:
        return (
            self.seed * 0x9E3779B1
            + self.step_count * 1000003
            + zlib.crc32(node.name.encode())
        ) % (2 ** 31)

    # -- parameter access --------------------------------------------------
    def weights(self, layer_name: str) -> np.ndarray:
        """The live weight tensor of a CONV/FC layer (by name)."""
        node = self.network.node(layer_name)
        return self.device.get(self._wkey(self._weight_index(node)))

    def parameter_fingerprint(self) -> int:
        """CRC over every parameter, for cheap bitwise-equality checks."""
        crc = 0
        for node in self.network:
            for key in (self._wkey(node.index), self._bkey(node.index)):
                if self.device.contains(key):
                    crc = zlib.crc32(self.device.get(key).tobytes(), crc)
        return crc

    # -- forward -----------------------------------------------------------
    def _input_arrays(self, node: NetworkNode) -> List[np.ndarray]:
        arrays = []
        for producer in node.producers:
            owner = self.network[producer].storage_index
            arrays.append(self.device.get(self._ykey(owner)))
        return arrays

    def _forward_node(self, node: NetworkNode, training: bool) -> np.ndarray:
        layer = node.layer
        inputs = self._input_arrays(node)

        if node.kind is LayerKind.CONV:
            assert isinstance(layer, Conv2D)
            widx = self._weight_index(node)
            w = self.device.get(self._wkey(widx))
            b = self.device.get(self._bkey(widx)) if layer.bias else None
            return ops.conv2d_forward(inputs[0], w, b, layer.stride, layer.pad)
        if node.kind is LayerKind.ACTV:
            assert isinstance(layer, Activation)
            forward, _ = _activation_ops(layer.activation)
            return forward(inputs[0])
        if node.kind is LayerKind.POOL:
            assert isinstance(layer, Pool2D)
            _, _, oh, ow = node.output_spec.shape
            if layer.mode is PoolMode.MAX:
                return ops.maxpool_forward(
                    inputs[0], layer.kernel, layer.stride, layer.pad, oh, ow
                )
            return ops.avgpool_forward(
                inputs[0], layer.kernel, layer.stride, layer.pad, oh, ow
            )
        if node.kind is LayerKind.LRN:
            assert isinstance(layer, LRN)
            return ops.lrn_forward(
                inputs[0], layer.local_size, layer.alpha, layer.beta, layer.k
            )
        if node.kind is LayerKind.FC:
            assert isinstance(layer, FullyConnected)
            widx = self._weight_index(node)
            w = self.device.get(self._wkey(widx))
            b = self.device.get(self._bkey(widx)) if layer.bias else None
            return ops.fc_forward(inputs[0], w, b)
        if node.kind is LayerKind.DROPOUT:
            assert isinstance(layer, Dropout)
            return ops.dropout_forward(
                inputs[0], layer.rate, self._dropout_seed(node), training
            )
        if node.kind is LayerKind.CONCAT:
            return ops.concat_forward(inputs)
        if node.kind is LayerKind.ADD:
            return ops.eltwise_add_forward(inputs)
        if node.kind is LayerKind.MUL:
            return ops.eltwise_mul_forward(inputs[0], inputs[1])
        if node.kind is LayerKind.BN:
            assert isinstance(layer, BatchNorm)
            gamma = self.device.get(self._wkey(node.index))
            beta = self.device.get(self._bkey(node.index))
            return ops.batchnorm_forward(inputs[0], gamma, beta, layer.epsilon)
        if node.kind is LayerKind.SLICE:
            assert isinstance(layer, Slice)
            return ops.slice_forward(inputs[0], layer.begin, layer.end)
        if node.kind is LayerKind.SOFTMAX:
            return ops.softmax_forward(inputs[0])
        raise ValueError(f"cannot execute layer kind {node.kind}")

    def _run_forward(self, images: np.ndarray, training: bool,
                     step: Optional[_StepState]) -> None:
        input_spec = self.network.input_node.output_spec
        if tuple(images.shape) != tuple(input_spec.shape):
            raise ValueError(
                f"batch shape {images.shape} does not match network input "
                f"{input_spec.shape}"
            )
        self.device.store(self._ykey(0), images.astype(ops.DTYPE, copy=False))

        for index in self.network.forward_schedule():
            node = self.network[index]
            if node.kind is not LayerKind.INPUT:
                y = self._forward_node(node, training)
                owner = node.storage_index
                if node.in_place:
                    self.device.get(self._ykey(owner))[...] = y
                else:
                    self.device.store(self._ykey(owner), y)

            # Release / offload / drop inputs whose last consumer we are.
            for storage in self.liveness.input_storages(index):
                if storage.forward_release_at != index:
                    continue
                key = self._ykey(storage.owner)
                if training and self._dropped and storage.owner == 0:
                    # Recompute replays may need the input batch (e.g.
                    # to re-slice timesteps); keep it for the whole step.
                    continue
                if not training or not storage.needed_backward:
                    self.device.free(key)
                elif storage.owner in self._dropped:
                    self.device.free(key)  # regenerated during backward
                elif step is not None and self.policy.wants_offload(node):
                    self.host.offload(key, self.device.pop(key))
                    step.offloaded_at.setdefault(index, []).append(storage)
                    step.prefetch_flags.mark_offloaded(index)

    # -- backward ----------------------------------------------------------
    def _restore(self, storage: StorageInfo) -> None:
        key = self._ykey(storage.owner)
        self.device.store(key, self.host.prefetch(key))

    def _recompute_storage(self, owner: int) -> None:
        """Regenerate a dropped storage by replaying forward kernels.

        Replays the contiguous run of dropped storages from the nearest
        resident checkpoint up to ``owner``, recursing for any producer
        from an earlier (also dropped) segment.  Dropout masks replay
        identically because their seeds depend only on (step, layer).
        """
        if self.device.contains(self._ykey(owner)):
            return
        if owner in self._droppable_order:
            position = self._droppable_order.index(owner)
            start = position
            while start > 0 and not self.device.contains(
                    self._ykey(self._droppable_order[start - 1])):
                if self._droppable_order[start - 1] not in self._dropped:
                    break  # a released boundary; replay from here
                start -= 1
            to_rebuild = self._droppable_order[start:position + 1]
        else:
            # A dead intermediate (released because backward never reads
            # it, e.g. a BN output feeding only an ADD) that the replay
            # nevertheless flows through: regenerate just its chain and
            # discard it again after the current backward step.
            to_rebuild = [owner]
            self._dead_resident.add(owner)

        rebuild_set = set(to_rebuild)
        for owner_index in to_rebuild:
            storage = self.liveness.storages[owner_index]
            for member in storage.chain:
                for producer in self.network[member].producers:
                    source = self.network[producer].storage_index
                    if source in rebuild_set:
                        continue
                    if self.device.contains(self._ykey(source)):
                        continue
                    if self.host.contains(self._ykey(source)):
                        # Hybrid mode: the replay flows through an
                        # offloaded buffer — prefetch it back.
                        self._restore(self.liveness.storages[source])
                    else:
                        self._recompute_storage(source)

        for owner_index in to_rebuild:
            if self.device.contains(self._ykey(owner_index)):
                continue  # regenerated by a recursive ensure above
            storage = self.liveness.storages[owner_index]
            for member in storage.chain:
                node = self.network[member]
                y = self._forward_node(node, training=True)
                key = self._ykey(owner_index)
                if node.in_place:
                    self.device.get(key)[...] = y
                else:
                    self.device.store(key, y)
                self.recompute_count += 1

    def _accumulate_gradient(self, owner: int, value: np.ndarray,
                             step: _StepState) -> None:
        """Write (or add) a dX contribution into a storage's gradient twin."""
        key = self._gkey(owner)
        if owner in step.initialized_gradients:
            self.device.get(key)[...] += value
        else:
            self.device.store(key, np.ascontiguousarray(value))
            step.initialized_gradients.add(owner)

    def _backward_node(self, node: NetworkNode, labels: np.ndarray,
                       step: _StepState) -> None:
        layer = node.layer
        own_g = self._gkey(node.storage_index)

        if node.kind is LayerKind.SOFTMAX:
            probs = self.device.get(self._ykey(node.storage_index))
            dx = ops.softmax_cross_entropy_backward(probs, labels)
            self._push_to_producer(node, dx, step)
            return

        dy = self.device.get(own_g)

        if node.kind is LayerKind.CONV:
            assert isinstance(layer, Conv2D)
            x = self._input_arrays(node)[0]
            widx = self._weight_index(node)
            w = self.device.get(self._wkey(widx))
            dx, dw, db = ops.conv2d_backward(
                x, w, dy, layer.stride, layer.pad, layer.bias
            )
            self.device.get(self._dwkey(widx))[...] += dw
            if db is not None:
                self.device.get(self._dbkey(widx))[...] += db
            self._push_to_producer(node, dx, step)
        elif node.kind is LayerKind.FC:
            assert isinstance(layer, FullyConnected)
            x = self._input_arrays(node)[0]
            widx = self._weight_index(node)
            w = self.device.get(self._wkey(widx))
            dx, dw, db = ops.fc_backward(x, w, dy, layer.bias)
            self.device.get(self._dwkey(widx))[...] += dw
            if db is not None:
                self.device.get(self._dbkey(widx))[...] += db
            self._push_to_producer(node, dx, step)
        elif node.kind is LayerKind.ACTV:
            assert isinstance(layer, Activation)
            _, backward = _activation_ops(layer.activation)
            y = self.device.get(self._ykey(node.storage_index))
            dy[...] = backward(y, dy)  # in-place, like the forward pass
        elif node.kind is LayerKind.DROPOUT:
            assert isinstance(layer, Dropout)
            dy[...] = ops.dropout_backward(
                dy, layer.rate, self._dropout_seed(node), training=True
            )
        elif node.kind is LayerKind.POOL:
            assert isinstance(layer, Pool2D)
            if layer.mode is PoolMode.MAX:
                x = self._input_arrays(node)[0]
                y = self.device.get(self._ykey(node.storage_index))
                dx = ops.maxpool_backward(
                    x, y, dy, layer.kernel, layer.stride, layer.pad
                )
            else:
                # Average pooling's backward needs only dY; the input
                # buffer may already be released, so take the shape from
                # the graph, never from a live array.
                x_shape = self.network[node.producers[0]].output_spec.shape
                dx = ops.avgpool_backward(
                    x_shape, dy, layer.kernel, layer.stride, layer.pad
                )
            self._push_to_producer(node, dx, step)
        elif node.kind is LayerKind.LRN:
            assert isinstance(layer, LRN)
            x = self._input_arrays(node)[0]
            y = self.device.get(self._ykey(node.storage_index))
            dx = ops.lrn_backward(
                x, y, dy, layer.local_size, layer.alpha, layer.beta, layer.k
            )
            self._push_to_producer(node, dx, step)
        elif node.kind is LayerKind.CONCAT:
            channel_counts = [
                self.network[p].output_spec.shape[1] for p in node.producers
            ]
            parts = ops.concat_backward(dy, channel_counts)
            for producer, part in zip(node.producers, parts):
                owner = self.network[producer].storage_index
                if self.network[owner].kind is not LayerKind.INPUT:
                    self._accumulate_gradient(owner, part, step)
        elif node.kind is LayerKind.ADD:
            for producer in node.producers:
                owner = self.network[producer].storage_index
                if self.network[owner].kind is not LayerKind.INPUT:
                    self._accumulate_gradient(owner, dy, step)
        elif node.kind is LayerKind.MUL:
            a, b = self._input_arrays(node)
            da, db = ops.eltwise_mul_backward(a, b, dy)
            for producer, dx in zip(node.producers, (da, db)):
                owner = self.network[producer].storage_index
                if self.network[owner].kind is not LayerKind.INPUT:
                    self._accumulate_gradient(owner, dx, step)
        elif node.kind is LayerKind.BN:
            assert isinstance(layer, BatchNorm)
            x = self._input_arrays(node)[0]
            gamma = self.device.get(self._wkey(node.index))
            dx, dgamma, dbeta = ops.batchnorm_backward(
                x, gamma, dy, layer.epsilon
            )
            self.device.get(self._dwkey(node.index))[...] += dgamma
            self.device.get(self._dbkey(node.index))[...] += dbeta
            self._push_to_producer(node, dx, step)
        elif node.kind is LayerKind.SLICE:
            assert isinstance(layer, Slice)
            producer = node.producers[0]
            owner = self.network[producer].storage_index
            if self.network[owner].kind is not LayerKind.INPUT:
                x_shape = self.network[producer].output_spec.shape
                self._accumulate_gradient(
                    owner, ops.slice_backward(x_shape, dy, layer.begin,
                                              layer.end), step,
                )
        else:
            raise ValueError(f"cannot differentiate layer kind {node.kind}")

    def _push_to_producer(self, node: NetworkNode, dx: np.ndarray,
                          step: _StepState) -> None:
        """Route a single-input layer's dX into its producer's twin."""
        producer = node.producers[0]
        owner = self.network[producer].storage_index
        if self.network[owner].kind is LayerKind.INPUT:
            return  # no gradient for the input batch
        self._accumulate_gradient(owner, dx, step)

    def _run_backward(self, labels: np.ndarray, step: _StepState) -> None:
        for index in self.network.backward_schedule():
            node = self.network[index]

            # Figure-10 prefetch, overlapped in the real system; here we
            # restore eagerly so availability semantics are identical.
            target = find_prefetch_layer(
                self.network, step.prefetch_flags, index
            )
            if target is not None:
                for storage in step.offloaded_at.get(target, []):
                    if self.host.contains(self._ykey(storage.owner)):
                        self._restore(storage)

            # Safety net: anything the kernel reads must be resident —
            # prefetched back from the host, or regenerated by replay.
            for storage in self._required_storages(node):
                if self.device.contains(self._ykey(storage.owner)):
                    continue
                if storage.owner in self._dropped:
                    self._recompute_storage(storage.owner)
                else:
                    self._restore(storage)
                    step.demand_fetches += 1

            self._backward_node(node, labels, step)

            # Figure-8 releases.
            for storage in self.liveness.all_storages():
                key = self._ykey(storage.owner)
                if storage.needed_backward and \
                        storage.backward_release_after == index and \
                        self.device.contains(key):
                    self.device.free(key)
                gkey = self._gkey(storage.owner)
                if storage.gradient_release_after == index and \
                        storage.owner in step.initialized_gradients:
                    self.device.free(gkey)
                    step.initialized_gradients.discard(storage.owner)

            # Drop any dead intermediates regenerated for this step's
            # recompute replays.
            for owner in self._dead_resident:
                key = self._ykey(owner)
                if self.device.contains(key):
                    self.device.free(key)
            self._dead_resident.clear()

    def _required_storages(self, node: NetworkNode) -> List[StorageInfo]:
        required: Dict[int, StorageInfo] = {}
        if node.layer.backward_needs_x:
            for storage in self.liveness.input_storages(node.index):
                required[storage.owner] = storage
        if node.layer.backward_needs_y:
            storage = self.liveness.storage_of(node.index)
            required[storage.owner] = storage
        return list(required.values())

    # -- public API ---------------------------------------------------------
    def train_step(self, images: np.ndarray, labels: np.ndarray) -> StepResult:
        """One SGD step: forward, loss, backward, parameter update."""
        step = _StepState(prefetch_flags=PrefetchState.for_network(self.network))
        # Weight gradients accumulate (weight tying may contribute from
        # several layers), so zero them before every step.
        for node in self.network:
            for key in (self._dwkey(node.index), self._dbkey(node.index)):
                if self.device.contains(key):
                    self.device.get(key)[...] = 0
        self._run_forward(images, training=True, step=step)

        output = self.network.output_node
        probs = self.device.get(self._ykey(output.storage_index))
        loss = ops.cross_entropy_loss(probs, labels)

        self._run_backward(labels, step)

        for node in self.network:
            wkey = self._wkey(node.index)
            if self.device.contains(wkey):
                self.optimizer.step(
                    wkey, self.device.get(wkey), self.device.get(self._dwkey(node.index))
                )
            bkey = self._bkey(node.index)
            if self.device.contains(bkey):
                self.optimizer.step(
                    bkey, self.device.get(bkey), self.device.get(self._dbkey(node.index))
                )

        self._release_leftovers()
        self.step_count += 1
        return StepResult(
            loss=loss,
            device_peak_bytes=self.device.peak_bytes,
            device_live_bytes=self.device.live_bytes,
            host_peak_bytes=self.host.peak_bytes,
            offload_count=self.host.offload_count,
            prefetch_count=self.host.prefetch_count,
            demand_fetch_count=step.demand_fetches,
        )

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Inference: forward only, freeing buffers at last use (Fig. 7)."""
        self._run_forward(images, training=False, step=None)
        output = self.network.output_node
        key = self._ykey(output.storage_index)
        probs = self.device.get(key).copy()
        self._release_leftovers()
        return probs

    def train(self, batches) -> List[StepResult]:
        """Convenience loop over an iterable of (images, labels)."""
        return [self.train_step(images, labels) for images, labels in batches]

    def _release_leftovers(self) -> None:
        for key in self.device.keys - self._persistent_keys:
            self.device.free(key)

    def transient_keys(self):
        """Non-persistent buffers currently resident (should be empty
        between steps — tests assert this)."""
        return self.device.keys - self._persistent_keys

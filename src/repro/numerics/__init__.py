"""Functional (numpy) execution: real training under the memory manager."""

from . import ops
from .data import accuracy, blob_batch, blob_stream, top_k_accuracy
from .heap import DeviceHeap, DeviceOOMError, HeapError, HostHeap
from .initializers import init_bias, init_weight, make_batch
from .optim import Adam, SGD
from .runtime import StepResult, TrainingRuntime

__all__ = [
    "DeviceHeap",
    "accuracy",
    "blob_batch",
    "blob_stream",
    "top_k_accuracy",
    "DeviceOOMError",
    "HeapError",
    "HostHeap",
    "Adam",
    "SGD",
    "StepResult",
    "TrainingRuntime",
    "init_bias",
    "init_weight",
    "make_batch",
    "ops",
]

"""Byte-budgeted device heap and host heap for the functional runtime.

Where the simulator only *accounts* for memory, the functional runtime
actually stores numpy arrays in a :class:`DeviceHeap` with a hard byte
budget — exceeding it raises, exactly like ``cudaMalloc`` failing on a
12 GB card.  Offload moves an array into the :class:`HostHeap` (modeling
pinned CPU memory) and frees the device bytes; prefetch moves it back.
Transfers copy the data, so a liveness bug (releasing a buffer that is
still needed, or reading a stale one) cannot hide: training diverges or
the heap raises.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class DeviceOOMError(MemoryError):
    """The device heap's byte budget is exhausted."""


class HeapError(RuntimeError):
    """Misuse of the heap (double store, missing key, use-after-free)."""


class DeviceHeap:
    """Named numpy buffers under a hard byte budget."""

    def __init__(self, budget_bytes: int):
        if budget_bytes <= 0:
            raise ValueError("device budget must be positive")
        self.budget_bytes = budget_bytes
        self._arrays: Dict[str, np.ndarray] = {}
        self._live_bytes = 0
        self._peak_bytes = 0

    def store(self, key: str, array: np.ndarray) -> np.ndarray:
        if key in self._arrays:
            raise HeapError(f"device buffer {key!r} already exists")
        nbytes = array.nbytes
        if self._live_bytes + nbytes > self.budget_bytes:
            raise DeviceOOMError(
                f"device OOM storing {key!r} ({nbytes} bytes): "
                f"{self._live_bytes}/{self.budget_bytes} live"
            )
        self._arrays[key] = array
        self._live_bytes += nbytes
        self._peak_bytes = max(self._peak_bytes, self._live_bytes)
        return array

    def get(self, key: str) -> np.ndarray:
        try:
            return self._arrays[key]
        except KeyError:
            raise HeapError(
                f"device buffer {key!r} is not resident (freed or offloaded?)"
            ) from None

    def contains(self, key: str) -> bool:
        return key in self._arrays

    def free(self, key: str) -> None:
        array = self._arrays.pop(key, None)
        if array is None:
            raise HeapError(f"freeing non-resident device buffer {key!r}")
        self._live_bytes -= array.nbytes

    def pop(self, key: str) -> np.ndarray:
        """Remove and return a buffer (used by offload)."""
        array = self.get(key)
        self.free(key)
        return array

    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    @property
    def peak_bytes(self) -> int:
        return self._peak_bytes

    @property
    def keys(self):
        return set(self._arrays)


class HostHeap:
    """Pinned host staging area for offloaded buffers."""

    def __init__(self, budget_bytes: Optional[int] = None):
        self.budget_bytes = budget_bytes
        self._arrays: Dict[str, np.ndarray] = {}
        self._live_bytes = 0
        self._peak_bytes = 0
        self.offload_count = 0
        self.prefetch_count = 0

    def offload(self, key: str, array: np.ndarray) -> None:
        if key in self._arrays:
            raise HeapError(f"host buffer {key!r} already exists")
        if self.budget_bytes is not None and \
                self._live_bytes + array.nbytes > self.budget_bytes:
            raise DeviceOOMError(
                f"host pinned budget exhausted offloading {key!r}"
            )
        # The DMA copies through PCIe; model with an explicit copy so
        # accidental aliasing of the device array cannot mask bugs.
        self._arrays[key] = array.copy()
        self._live_bytes += array.nbytes
        self._peak_bytes = max(self._peak_bytes, self._live_bytes)
        self.offload_count += 1

    def prefetch(self, key: str) -> np.ndarray:
        array = self._arrays.pop(key, None)
        if array is None:
            raise HeapError(f"prefetching unknown host buffer {key!r}")
        self._live_bytes -= array.nbytes
        self.prefetch_count += 1
        return array.copy()

    def contains(self, key: str) -> bool:
        return key in self._arrays

    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    @property
    def peak_bytes(self) -> int:
        return self._peak_bytes

"""Deterministic parameter initialization.

Every weight is drawn from a generator seeded by ``(global seed, layer
name)``, so two runtimes built over the same network and seed start from
*bitwise identical* parameters regardless of construction order — the
precondition for the bit-identical-training invariant the tests enforce.
"""

from __future__ import annotations

import zlib
from typing import Optional

import numpy as np

from ..graph.network import NetworkNode
from .ops import DTYPE


def _layer_seed(global_seed: int, name: str) -> int:
    return (global_seed * 0x9E3779B1 + zlib.crc32(name.encode())) % (2 ** 31)


def init_weight(node: NetworkNode, seed: int) -> Optional[np.ndarray]:
    """He-style normal init for CONV/FC weights; ones for BN gamma."""
    if node.weight_spec is None:
        return None
    from ..graph.layer import LayerKind

    if node.kind is LayerKind.BN:
        return np.ones(node.weight_spec.shape, dtype=DTYPE)
    rng = np.random.default_rng(_layer_seed(seed, node.name))
    shape = node.weight_spec.shape
    fan_in = int(np.prod(shape[1:]))
    std = np.sqrt(2.0 / max(fan_in, 1))
    return (rng.standard_normal(shape) * std).astype(DTYPE)


def init_bias(node: NetworkNode, seed: int) -> Optional[np.ndarray]:
    if node.bias_spec is None:
        return None
    return np.zeros(node.bias_spec.shape, dtype=DTYPE)


def make_batch(shape, num_classes: int, seed: int):
    """One deterministic synthetic (images, labels) batch."""
    rng = np.random.default_rng(seed)
    images = rng.standard_normal(shape).astype(DTYPE)
    labels = rng.integers(0, num_classes, size=shape[0])
    return images, labels

"""CUDA-stream model: in-order queues that can synchronize with each other.

vDNN "employs two separate CUDA streams to overlap normal DNN
computations with the memory allocation, movement, and release operations"
(Section III-B): ``stream_compute`` runs cuDNN kernels, ``stream_memory``
runs offload/prefetch DMA.  A CUDA stream executes its own work strictly
in order; cross-stream ordering only exists where the program inserts a
synchronization.  :class:`SimStream` models exactly that with a
``ready_time`` clock per stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .timeline import EventKind, Timeline, TimelineEvent

COMPUTE_STREAM = "stream_compute"
MEMORY_STREAM = "stream_memory"

#: STALL never goes through :meth:`SimStream.push` (it is recorded
#: directly on the timeline), so RETRY is the only pushed kind the
#: busy-time definition excludes.
_RETRY = EventKind.RETRY


@dataclass
class SimStream:
    """One in-order execution queue with a monotonically advancing clock."""

    name: str
    timeline: Timeline
    ready_time: float = 0.0
    #: Running occupancy total, maintained incrementally so observers
    #: never need an O(events) sweep.  Matches
    #: :meth:`~repro.sim.timeline.Timeline.busy_times` bit for bit: the
    #: summed term is ``end - start`` (NOT ``duration`` — with FP
    #: rounding ``(start + d) - start`` can differ from ``d``), terms
    #: accumulate in push order (= the merge's sorted order, since an
    #: in-order stream's starts are non-decreasing and its events never
    #: overlap), and RETRY backoff idling is excluded just as the merge
    #: excludes it.
    busy_seconds: float = field(default=0.0)

    def enqueue(
        self,
        kind: EventKind,
        label: str,
        duration: float,
        earliest_start: float = 0.0,
        nbytes: int = 0,
        layer_index: int = -1,
    ) -> TimelineEvent:
        """Append one operation; it starts when the stream *and* its
        dependencies are ready, and runs for ``duration`` seconds."""
        start, end = self.push(kind, label, duration, earliest_start,
                               nbytes, layer_index)
        return TimelineEvent(self.name, kind, label, start, end,
                             nbytes, layer_index)

    def push(
        self,
        kind: EventKind,
        label: str,
        duration: float,
        earliest_start: float = 0.0,
        nbytes: int = 0,
        layer_index: int = -1,
    ) -> tuple:
        """:meth:`enqueue` without the event-object construction.

        The simulator hot loop only ever needs the operation's placement
        in time, so this returns the bare ``(start, end)`` pair and lets
        the slot-based timeline store the rest.
        """
        if duration < 0:
            raise ValueError(f"negative duration for {label!r}")
        start = max(self.ready_time, earliest_start)
        end = start + duration
        self.timeline.append(
            self.name, kind, label, start, end, nbytes, layer_index
        )
        self.ready_time = end
        if kind is not _RETRY:
            self.busy_seconds += end - start
        return start, end

    def wait_for(self, other: "SimStream") -> float:
        """cudaStreamSynchronize-style join: this stream's next operation
        cannot start before everything queued on ``other`` has finished.

        Returns the stall time introduced (0 when ``other`` was already
        done) — the "wasted time" the paper's Figure 9 shades.
        """
        stall = max(0.0, other.ready_time - self.ready_time)
        self.ready_time = max(self.ready_time, other.ready_time)
        return stall

    def wait_until(self, time: float) -> float:
        """Block the stream until an absolute timestamp (event wait)."""
        stall = max(0.0, time - self.ready_time)
        self.ready_time = max(self.ready_time, time)
        return stall


def make_stream_pair(timeline: Optional[Timeline] = None):
    """The (compute, memory) stream pair vDNN uses, sharing one timeline."""
    timeline = timeline if timeline is not None else Timeline()
    compute = SimStream(COMPUTE_STREAM, timeline)
    memory = SimStream(MEMORY_STREAM, timeline)
    return compute, memory, timeline

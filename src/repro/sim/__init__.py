"""Two-stream execution simulation: timelines, streams, power."""

from .power import PowerModel, PowerReport, analyze_power
from .trace import (JOB_STREAM_PREFIX, MODEL_STREAM_PREFIX, job_lane_name,
                    lane_name, save_trace, timeline_to_trace_events)
from .stream import COMPUTE_STREAM, MEMORY_STREAM, SimStream, make_stream_pair
from .timeline import EmptyTimelineError, EventKind, Timeline, TimelineEvent

__all__ = [
    "COMPUTE_STREAM",
    "EmptyTimelineError",
    "EventKind",
    "JOB_STREAM_PREFIX",
    "MODEL_STREAM_PREFIX",
    "job_lane_name",
    "lane_name",
    "MEMORY_STREAM",
    "PowerModel",
    "PowerReport",
    "SimStream",
    "Timeline",
    "TimelineEvent",
    "analyze_power",
    "make_stream_pair",
    "save_trace",
    "timeline_to_trace_events",
]

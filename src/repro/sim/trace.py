"""Export timelines to the Chrome trace-event format.

``chrome://tracing`` / Perfetto render the two-stream execution exactly
like the paper's Figure 9: one row per CUDA stream, offloads overlapping
forward kernels, prefetches overlapping backward kernels, stalls shaded
on the compute stream.  The memory curve is exported as counter events
so the same trace shows pool occupancy over time.

Multi-tenant schedules use one *process lane per job*: any stream named
``job:<name>`` (the convention of :mod:`repro.sched.scheduler`) is
promoted to its own trace process, so an N-job timeline renders as N
stacked rows — one per tenant — instead of N threads crammed into one
process group.
"""

from __future__ import annotations

import json
from typing import List, Optional

from ..alloc.stats import UsageTracker
from .timeline import EventKind, Timeline

_CATEGORY = {
    EventKind.FORWARD: "compute",
    EventKind.BACKWARD: "compute",
    EventKind.UPDATE: "compute",
    EventKind.OFFLOAD: "transfer",
    EventKind.PREFETCH: "transfer",
    EventKind.STALL: "stall",
    EventKind.RUN: "job",
    EventKind.FAULT: "fault",
    EventKind.RETRY: "fault",
}

#: Stream-name prefix that promotes a stream to its own process lane.
JOB_STREAM_PREFIX = "job:"

#: Serving's per-model streams get the same per-process promotion.
MODEL_STREAM_PREFIX = "model:"

#: All prefixes promoted to dedicated process lanes.
LANE_PREFIXES = (JOB_STREAM_PREFIX, MODEL_STREAM_PREFIX)


def job_lane_name(stream: str) -> Optional[str]:
    """The job name of a per-job stream, or None for ordinary streams."""
    if stream.startswith(JOB_STREAM_PREFIX):
        return stream[len(JOB_STREAM_PREFIX):]
    return None


def lane_name(stream: str) -> Optional[str]:
    """The lane name of any promoted stream (``job:`` or ``model:``),
    or None for ordinary streams rendered as threads of process 0."""
    for prefix in LANE_PREFIXES:
        if stream.startswith(prefix):
            return stream[len(prefix):]
    return None


def timeline_to_trace_events(
    timeline: Timeline,
    usage: Optional[UsageTracker] = None,
    process_name: str = "vDNN",
    spans: Optional[List] = None,
) -> List[dict]:
    """Convert a timeline (+ optional memory curve) to trace events.

    Ordinary streams become threads of process 0; ``job:<name>`` streams
    each get a dedicated process (pid 1..N) named after the job, so
    multi-tenant timelines render one row per job.  ``spans`` (a list of
    :class:`repro.obs.Span`) adds one extra process whose threads are
    the span lanes — phases and job lifecycles lined up on the same
    time axis as the stream rows.
    """
    streams = timeline.streams()
    plain = [s for s in streams if lane_name(s) is None]
    jobs = [s for s in streams if lane_name(s) is not None]

    events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": 0,
        "args": {"name": process_name},
    }]
    pid_of = {stream: 0 for stream in plain}
    tid_of = {}
    for tid, stream in enumerate(plain):
        tid_of[stream] = tid
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": stream},
        })
    for lane, stream in enumerate(jobs, start=1):
        pid_of[stream] = lane
        tid_of[stream] = 0
        events.append({
            "name": "process_name", "ph": "M", "pid": lane,
            "args": {"name": lane_name(stream)},
        })

    for event in timeline.events:
        events.append({
            "name": f"{event.kind.value} {event.label}",
            "cat": _CATEGORY.get(event.kind, "sched"),
            "ph": "X",
            "pid": pid_of[event.stream],
            "tid": tid_of[event.stream],
            "ts": event.start * 1e6,        # trace format uses microseconds
            "dur": event.duration * 1e6,
            "args": {"bytes": event.nbytes, "layer": event.layer_index},
        })

    if usage is not None:
        for time, live_bytes in usage.curve():
            events.append({
                "name": "pool bytes",
                "ph": "C",
                "pid": 0,
                "ts": time * 1e6,
                "args": {"live": live_bytes},
            })

    if spans:
        from ..obs import spans_to_trace_events

        events.extend(spans_to_trace_events(spans, pid=len(jobs) + 1))
    return events


def save_trace(
    path: str,
    timeline: Timeline,
    usage: Optional[UsageTracker] = None,
    process_name: str = "vDNN",
    spans: Optional[List] = None,
) -> None:
    """Write a ``.json`` Chrome/Perfetto trace file."""
    events = timeline_to_trace_events(timeline, usage, process_name, spans)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, handle)

"""Export timelines to the Chrome trace-event format.

``chrome://tracing`` / Perfetto render the two-stream execution exactly
like the paper's Figure 9: one row per CUDA stream, offloads overlapping
forward kernels, prefetches overlapping backward kernels, stalls shaded
on the compute stream.  The memory curve is exported as counter events
so the same trace shows pool occupancy over time.
"""

from __future__ import annotations

import json
from typing import List, Optional

from ..alloc.stats import UsageTracker
from .timeline import EventKind, Timeline

_CATEGORY = {
    EventKind.FORWARD: "compute",
    EventKind.BACKWARD: "compute",
    EventKind.UPDATE: "compute",
    EventKind.OFFLOAD: "transfer",
    EventKind.PREFETCH: "transfer",
    EventKind.STALL: "stall",
}


def timeline_to_trace_events(
    timeline: Timeline,
    usage: Optional[UsageTracker] = None,
    process_name: str = "vDNN",
) -> List[dict]:
    """Convert a timeline (+ optional memory curve) to trace events."""
    streams = sorted({e.stream for e in timeline.events})
    events: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": 0,
        "args": {"name": process_name},
    }]
    for tid, stream in enumerate(streams):
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": stream},
        })
    tid_of = {stream: tid for tid, stream in enumerate(streams)}

    for event in timeline.events:
        events.append({
            "name": f"{event.kind.value} {event.label}",
            "cat": _CATEGORY[event.kind],
            "ph": "X",
            "pid": 0,
            "tid": tid_of[event.stream],
            "ts": event.start * 1e6,        # trace format uses microseconds
            "dur": event.duration * 1e6,
            "args": {"bytes": event.nbytes, "layer": event.layer_index},
        })

    if usage is not None:
        for time, live_bytes in usage.curve():
            events.append({
                "name": "pool bytes",
                "ph": "C",
                "pid": 0,
                "ts": time * 1e6,
                "args": {"live": live_bytes},
            })
    return events


def save_trace(
    path: str,
    timeline: Timeline,
    usage: Optional[UsageTracker] = None,
    process_name: str = "vDNN",
) -> None:
    """Write a ``.json`` Chrome/Perfetto trace file."""
    events = timeline_to_trace_events(timeline, usage, process_name)
    with open(path, "w") as handle:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, handle)

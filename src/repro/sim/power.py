"""Activity-based GPU power model (Section V-D).

The paper measures, with ``nvprof``, that vDNN_dyn raises *maximum* GPU
power by 1-7% (the offload/prefetch DMA traffic adds instantaneous
draw) while leaving *average* power essentially unchanged (the extra
traffic is small relative to total energy and vDNN_dyn adds ~no runtime).

We reproduce that with a standard activity-decomposition model: a
baseline idle draw, a dynamic component proportional to compute-stream
occupancy, a DRAM component proportional to achieved memory bandwidth,
and a small interconnect component active while DMA transfers run.
Constants are set so a fully busy Titan X sits near its 250 W TDP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..hw.gpu import GPUSpec
from .stream import COMPUTE_STREAM, MEMORY_STREAM
from .timeline import EventKind, Timeline


@dataclass(frozen=True)
class PowerModel:
    """Decomposed power draw for one GPU.

    Attributes:
        idle_watts: static + leakage draw.
        compute_watts: additional draw of fully-occupied SMs.
        dram_watts: additional draw at 100% DRAM bandwidth utilization.
        pcie_watts: additional draw while a DMA copy engine is active.
    """

    idle_watts: float = 45.0
    compute_watts: float = 165.0
    dram_watts: float = 35.0
    pcie_watts: float = 8.0

    def instantaneous(
        self, computing: bool, dram_utilization: float, transferring: bool
    ) -> float:
        """Power draw for one instant with the given activity."""
        dram_utilization = min(max(dram_utilization, 0.0), 1.0)
        power = self.idle_watts
        if computing:
            power += self.compute_watts
        power += self.dram_watts * dram_utilization
        if transferring:
            power += self.pcie_watts
        return power


@dataclass(frozen=True)
class PowerReport:
    """Average and maximum power over one timeline."""

    average_watts: float
    max_watts: float
    energy_joules: float
    duration: float


def analyze_power(
    timeline: Timeline, gpu: GPUSpec, model: PowerModel = PowerModel()
) -> PowerReport:
    """Integrate the power model over a timeline's activity intervals.

    Single pass: the boundary instants come precomputed (and cached)
    from the timeline, and because each simulated stream executes in
    order, its events never overlap — so instead of rescanning every
    event per interval, two monotone cursors sweep the compute and
    transfer event lists alongside the ascending interval midpoints.
    """
    if not len(timeline):
        return PowerReport(model.idle_watts, model.idle_watts, 0.0, 0.0)

    boundaries = timeline.boundaries()
    events = timeline.events
    compute_events = [
        e for e in events
        if e.stream == COMPUTE_STREAM and e.kind is not EventKind.STALL
    ]
    transfer_events = [
        e for e in events
        if e.stream == MEMORY_STREAM
        and e.kind in (EventKind.OFFLOAD, EventKind.PREFETCH)
    ]

    energy = 0.0
    max_power = model.idle_watts
    total = boundaries[-1] - boundaries[0]
    ci, ti = 0, 0
    n_compute, n_transfer = len(compute_events), len(transfer_events)
    for lo, hi in zip(boundaries, boundaries[1:]):
        if hi <= lo:
            continue
        mid = (lo + hi) / 2.0
        while ci < n_compute and compute_events[ci].end <= mid:
            ci += 1
        active_kernel = None
        if ci < n_compute and compute_events[ci].start <= mid:
            active_kernel = compute_events[ci]
        computing = active_kernel is not None
        dram_bw = 0.0
        if active_kernel is not None and active_kernel.duration > 0:
            dram_bw = active_kernel.nbytes / active_kernel.duration
        while ti < n_transfer and transfer_events[ti].end <= mid:
            ti += 1
        transferring = ti < n_transfer and transfer_events[ti].start <= mid
        if transferring:
            # Offload/prefetch DMA also reads/writes device DRAM.
            transfer = transfer_events[ti]
            if transfer.duration > 0:
                dram_bw += transfer.nbytes / transfer.duration
        power = model.instantaneous(computing, dram_bw / gpu.dram_bandwidth, transferring)
        energy += power * (hi - lo)
        max_power = max(max_power, power)

    average = energy / total if total > 0 else model.idle_watts
    return PowerReport(average, max_power, energy, total)

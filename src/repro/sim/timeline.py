"""Execution timeline: the record of what ran when, on which stream.

The executor emits one :class:`TimelineEvent` per kernel or DMA transfer.
The timeline is the ground truth for every time-derived result: iteration
latency (Figure 14), reuse distances (Figure 6), overlap visualization
(Figure 9), DRAM-bandwidth accounting (Figure 13) and the power model
(Section V-D).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


class EventKind(enum.Enum):
    FORWARD = "FWD"
    BACKWARD = "BWD"
    OFFLOAD = "OFF"
    PREFETCH = "PRE"
    STALL = "STALL"
    UPDATE = "UPD"
    RUN = "RUN"        # one multi-tenant residency interval of a whole job
    SYNC = "SYNC"      # zero-duration stream join (recorded in verify mode)
    FAULT = "FAULT"    # an injected fault striking (failed DMA attempt,
                       # budget shrink, eviction); duration = wasted time
    RETRY = "RETRY"    # backoff idle before re-attempting a failed DMA


@dataclass(frozen=True)
class TimelineEvent:
    """One interval of activity on one stream."""

    stream: str
    kind: EventKind
    label: str
    start: float
    end: float
    nbytes: int = 0           # payload moved (transfers) or touched (kernels)
    layer_index: int = -1

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"event {self.label!r} ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


class EmptyTimelineError(ValueError):
    """Raised when time bounds are requested from an event-less timeline."""

    def __init__(self) -> None:
        super().__init__(
            "timeline is empty: no events have been recorded, so it has "
            "no time bounds"
        )


class Timeline:
    """Append-only event log with simple analytics.

    Time bounds (``t0``/``t1``) are tracked incrementally on append, so
    ``span``/``end_time``/``render_ascii`` never rescan the whole log.
    Timelines compare equal when they hold equal event sequences.
    """

    def __init__(self) -> None:
        self._events: List[TimelineEvent] = []
        self._t0: Optional[float] = None
        self._t1: Optional[float] = None

    def add(self, event: TimelineEvent) -> TimelineEvent:
        self._events.append(event)
        self._extend_bounds(event)
        return self

    def record(
        self,
        stream: str,
        kind: EventKind,
        label: str,
        start: float,
        end: float,
        nbytes: int = 0,
        layer_index: int = -1,
    ) -> TimelineEvent:
        event = TimelineEvent(stream, kind, label, start, end, nbytes, layer_index)
        self._events.append(event)
        self._extend_bounds(event)
        return event

    def _extend_bounds(self, event: TimelineEvent) -> None:
        if self._t0 is None or event.start < self._t0:
            self._t0 = event.start
        if self._t1 is None or event.end > self._t1:
            self._t1 = event.end

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timeline):
            return NotImplemented
        return self._events == other._events

    __hash__ = None  # mutable container; value-equal, not hashable

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[TimelineEvent]:
        return list(self._events)

    @property
    def t0(self) -> float:
        """Earliest event start; raises :class:`EmptyTimelineError` when empty."""
        if self._t0 is None:
            raise EmptyTimelineError()
        return self._t0

    @property
    def t1(self) -> float:
        """Latest event end; raises :class:`EmptyTimelineError` when empty."""
        if self._t1 is None:
            raise EmptyTimelineError()
        return self._t1

    @property
    def span(self) -> float:
        """End-to-end wall time covered by the log (0 when empty)."""
        if self._t0 is None:
            return 0.0
        return self._t1 - self._t0

    @property
    def end_time(self) -> float:
        return self._t1 if self._t1 is not None else 0.0

    def of_kind(self, *kinds: EventKind) -> List[TimelineEvent]:
        return [e for e in self._events if e.kind in kinds]

    def on_stream(self, stream: str) -> List[TimelineEvent]:
        return [e for e in self._events if e.stream == stream]

    def for_layer(self, layer_index: int) -> List[TimelineEvent]:
        return [e for e in self._events if e.layer_index == layer_index]

    def busy_time(self, stream: str) -> float:
        """Union length of the stream's productive intervals.

        Stalls and retry backoffs are idle time, not work; failed DMA
        attempts (FAULT) do occupy the engine and count as busy.
        """
        return self.busy_times(stream)[stream]

    def busy_times(self, *streams: str) -> Dict[str, float]:
        """:meth:`busy_time` for several streams in one pass over the log."""
        per_stream: Dict[str, List[Tuple[float, float]]] = {
            s: [] for s in streams}
        for e in self._events:
            bucket = per_stream.get(e.stream)
            if bucket is not None \
                    and e.kind is not EventKind.STALL \
                    and e.kind is not EventKind.RETRY:
                bucket.append((e.start, e.end))
        out: Dict[str, float] = {}
        for stream, intervals in per_stream.items():
            intervals.sort()
            total, cursor = 0.0, float("-inf")
            for start, end in intervals:
                start = max(start, cursor)
                if end > start:
                    total += end - start
                    cursor = end
            out[stream] = total
        return out

    def transferred_bytes(self, *kinds: EventKind) -> int:
        kinds = kinds or (EventKind.OFFLOAD, EventKind.PREFETCH)
        return sum(e.nbytes for e in self._events if e.kind in kinds)

    # ------------------------------------------------------------------
    def render_ascii(self, width: int = 100, streams: Optional[Iterable[str]] = None) -> str:
        """Render a Figure-9 style two-row timeline as ASCII art."""
        if not self._events:
            return "(empty timeline)"
        t0, t1 = self.t0, self.t1
        scale = (width - 1) / (t1 - t0) if t1 > t0 else 0.0

        names = list(streams) if streams else sorted({e.stream for e in self._events})
        rows = []
        for name in names:
            row = [" "] * width
            for event in self.on_stream(name):
                lo = int((event.start - t0) * scale)
                hi = max(lo + 1, int((event.end - t0) * scale))
                text = f"[{event.kind.value} {event.label}]"
                for i in range(lo, min(hi, width)):
                    offset = i - lo
                    row[i] = text[offset] if offset < len(text) else "="
            rows.append(f"{name:>14s} |{''.join(row)}|")
        rows.append(f"{'':>14s}  t=0 {'':{width - 14}} t={t1 - t0:.4f}s")
        return "\n".join(rows)

"""Execution timeline: the record of what ran when, on which stream.

The executor emits one event per kernel or DMA transfer.  The timeline
is the ground truth for every time-derived result: iteration latency
(Figure 14), reuse distances (Figure 6), overlap visualization
(Figure 9), DRAM-bandwidth accounting (Figure 13) and the power model
(Section V-D).

Storage is **slot-based**: events live in append-only parallel arrays
(one python list per field), not one object per event — the hot
simulation loop appends seven scalars instead of constructing a frozen
dataclass.  :class:`TimelineEvent` survives as the *view* type: the
:attr:`Timeline.events` property materialises (and caches) the familiar
event objects for analysis-time consumers, so everything downstream of
the simulator keeps its API while the simulator itself stops paying for
it.  Derived facts that analysis passes need repeatedly — the sorted
start/end boundary set, the stream-name set — are computed in one pass
over the arrays and cached until the next append.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


class EventKind(enum.Enum):
    FORWARD = "FWD"
    BACKWARD = "BWD"
    OFFLOAD = "OFF"
    PREFETCH = "PRE"
    STALL = "STALL"
    UPDATE = "UPD"
    RUN = "RUN"        # one multi-tenant residency interval of a whole job
    SYNC = "SYNC"      # zero-duration stream join (recorded in verify mode)
    FAULT = "FAULT"    # an injected fault striking (failed DMA attempt,
                       # budget shrink, eviction); duration = wasted time
    RETRY = "RETRY"    # backoff idle before re-attempting a failed DMA


@dataclass(frozen=True)
class TimelineEvent:
    """One interval of activity on one stream (a view over the slots)."""

    stream: str
    kind: EventKind
    label: str
    start: float
    end: float
    nbytes: int = 0           # payload moved (transfers) or touched (kernels)
    layer_index: int = -1

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"event {self.label!r} ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


class EmptyTimelineError(ValueError):
    """Raised when time bounds are requested from an event-less timeline."""

    def __init__(self) -> None:
        super().__init__(
            "timeline is empty: no events have been recorded, so it has "
            "no time bounds"
        )


_SLOTS = ("_stream", "_kind", "_label", "_start", "_end", "_nbytes",
          "_layer", "_t0", "_t1")


class Timeline:
    """Append-only slot-array event log with simple analytics.

    Time bounds (``t0``/``t1``) are tracked incrementally on append, so
    ``span``/``end_time``/``render_ascii`` never rescan the whole log.
    Timelines compare equal when they hold equal event sequences.
    """

    __slots__ = _SLOTS + ("_view", "_bounds", "_streams")

    def __init__(self) -> None:
        self._stream: List[str] = []
        self._kind: List[EventKind] = []
        self._label: List[str] = []
        self._start: List[float] = []
        self._end: List[float] = []
        self._nbytes: List[int] = []
        self._layer: List[int] = []
        self._t0: Optional[float] = None
        self._t1: Optional[float] = None
        # Caches derived from the arrays; invalidated by every append.
        self._view: Optional[List[TimelineEvent]] = None
        self._bounds: Optional[List[float]] = None
        self._streams: Optional[List[str]] = None

    # -- appending ------------------------------------------------------
    def append(
        self,
        stream: str,
        kind: EventKind,
        label: str,
        start: float,
        end: float,
        nbytes: int = 0,
        layer_index: int = -1,
    ) -> None:
        """Hot-path append: seven scalar pushes, no event object."""
        if end < start:
            raise ValueError(f"event {label!r} ends before it starts")
        self._stream.append(stream)
        self._kind.append(kind)
        self._label.append(label)
        self._start.append(start)
        self._end.append(end)
        self._nbytes.append(nbytes)
        self._layer.append(layer_index)
        if self._t0 is None or start < self._t0:
            self._t0 = start
        if self._t1 is None or end > self._t1:
            self._t1 = end
        self._view = None
        self._bounds = None
        self._streams = None

    def record(
        self,
        stream: str,
        kind: EventKind,
        label: str,
        start: float,
        end: float,
        nbytes: int = 0,
        layer_index: int = -1,
    ) -> TimelineEvent:
        """Append and return the event view (compat API)."""
        self.append(stream, kind, label, start, end, nbytes, layer_index)
        return TimelineEvent(stream, kind, label, start, end, nbytes,
                             layer_index)

    def add(self, event: TimelineEvent) -> "Timeline":
        self.append(event.stream, event.kind, event.label, event.start,
                    event.end, event.nbytes, event.layer_index)
        return self

    # -- identity -------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timeline):
            return NotImplemented
        # Bit-identity is the contract here, not approximation: two
        # timelines are equal iff they hold identical event sequences.
        return (self._stream == other._stream
                and self._kind == other._kind
                and self._label == other._label
                and self._start == other._start
                and self._end == other._end
                and self._nbytes == other._nbytes  # repro: allow(LINT204)
                and self._layer == other._layer)

    __hash__ = None  # mutable container; value-equal, not hashable

    def __len__(self) -> int:
        return len(self._start)

    def __getstate__(self) -> dict:
        # Pickle the arrays only — the caches are derivable and would
        # bloat every cached IterationResult with view objects.
        return {name: getattr(self, name) for name in _SLOTS}

    def __setstate__(self, state: dict) -> None:
        for name in _SLOTS:
            setattr(self, name, state[name])
        self._view = None
        self._bounds = None
        self._streams = None

    # ------------------------------------------------------------------
    @property
    def events(self) -> List[TimelineEvent]:
        """Materialised event views (cached until the next append)."""
        if self._view is None:
            self._view = [
                TimelineEvent(*fields)
                for fields in zip(self._stream, self._kind, self._label,
                                  self._start, self._end, self._nbytes,
                                  self._layer)
            ]
        return list(self._view)

    @property
    def t0(self) -> float:
        """Earliest event start; raises :class:`EmptyTimelineError` when empty."""
        if self._t0 is None:
            raise EmptyTimelineError()
        return self._t0

    @property
    def t1(self) -> float:
        """Latest event end; raises :class:`EmptyTimelineError` when empty."""
        if self._t1 is None:
            raise EmptyTimelineError()
        return self._t1

    @property
    def span(self) -> float:
        """End-to-end wall time covered by the log (0 when empty)."""
        if self._t0 is None:
            return 0.0
        return self._t1 - self._t0

    @property
    def end_time(self) -> float:
        return self._t1 if self._t1 is not None else 0.0

    def of_kind(self, *kinds: EventKind) -> List[TimelineEvent]:
        return [e for e in self.events if e.kind in kinds]

    def on_stream(self, stream: str) -> List[TimelineEvent]:
        return [e for e in self.events if e.stream == stream]

    def for_layer(self, layer_index: int) -> List[TimelineEvent]:
        return [e for e in self.events if e.layer_index == layer_index]

    def streams(self) -> List[str]:
        """Sorted distinct stream names, one pass, cached."""
        if self._streams is None:
            self._streams = sorted(set(self._stream))
        return list(self._streams)

    def boundaries(self) -> List[float]:
        """Sorted distinct event start/end instants, one pass, cached.

        The power model (and any other sweep over activity intervals)
        consumes this instead of rebuilding ``sorted({starts}|{ends})``
        per call.
        """
        if self._bounds is None:
            self._bounds = sorted(set(self._start).union(self._end))
        return list(self._bounds)

    def layer_window(self, layer_indices) -> Optional[Tuple[float, float]]:
        """(earliest start, latest end) over events of the given layers.

        One pass over the arrays, no view materialisation; ``None`` when
        no event belongs to any of the layers.
        """
        lo: Optional[float] = None
        hi: Optional[float] = None
        for layer, start, end in zip(self._layer, self._start, self._end):
            if layer in layer_indices:
                if lo is None or start < lo:
                    lo = start
                if hi is None or end > hi:
                    hi = end
        if lo is None or hi is None:
            return None
        return lo, hi

    def busy_time(self, stream: str) -> float:
        """Union length of the stream's productive intervals.

        Stalls and retry backoffs are idle time, not work; failed DMA
        attempts (FAULT) do occupy the engine and count as busy.
        """
        return self.busy_times(stream)[stream]

    def busy_times(self, *streams: str) -> Dict[str, float]:
        """:meth:`busy_time` for several streams in one pass over the log."""
        per_stream: Dict[str, List[Tuple[float, float]]] = {
            s: [] for s in streams}
        stall, retry = EventKind.STALL, EventKind.RETRY
        for name, kind, start, end in zip(self._stream, self._kind,
                                          self._start, self._end):
            bucket = per_stream.get(name)
            if bucket is not None and kind is not stall \
                    and kind is not retry:
                bucket.append((start, end))
        out: Dict[str, float] = {}
        for stream, intervals in per_stream.items():
            intervals.sort()
            total, cursor = 0.0, float("-inf")
            for start, end in intervals:
                start = max(start, cursor)
                if end > start:
                    total += end - start
                    cursor = end
            out[stream] = total
        return out

    def transferred_bytes(self, *kinds: EventKind) -> int:
        kinds = kinds or (EventKind.OFFLOAD, EventKind.PREFETCH)
        return sum(n for n, k in zip(self._nbytes, self._kind)
                   if k in kinds)

    # ------------------------------------------------------------------
    def render_ascii(self, width: int = 100, streams: Optional[Iterable[str]] = None) -> str:
        """Render a Figure-9 style two-row timeline as ASCII art."""
        if not self._start:
            return "(empty timeline)"
        t0, t1 = self.t0, self.t1
        scale = (width - 1) / (t1 - t0) if t1 > t0 else 0.0

        names = list(streams) if streams else self.streams()
        rows = []
        for name in names:
            row = [" "] * width
            for event in self.on_stream(name):
                lo = int((event.start - t0) * scale)
                hi = max(lo + 1, int((event.end - t0) * scale))
                text = f"[{event.kind.value} {event.label}]"
                for i in range(lo, min(hi, width)):
                    offset = i - lo
                    row[i] = text[offset] if offset < len(text) else "="
            rows.append(f"{name:>14s} |{''.join(row)}|")
        rows.append(f"{'':>14s}  t=0 {'':{width - 14}} t={t1 - t0:.4f}s")
        return "\n".join(rows)

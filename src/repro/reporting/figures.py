"""One function per paper figure: compute the data, render it as text.

These are the single source of truth for the benchmark harness: each
``figNN_*`` function returns a :class:`FigureResult` whose ``rows`` carry
the same series the paper's figure plots and whose ``text`` is a
paper-style rendering.  Benchmarks time these functions and print the
text; EXPERIMENTS.md records their outputs next to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.algo_config import AlgoConfig
from ..core.api import compare_policies, evaluate, oracular_baseline
from ..core.executor import IterationResult
from ..graph.network import Network
from ..graph.tensor import gb, mb
from ..hw.config import PAPER_SYSTEM, SystemConfig
from ..profiler.bandwidth import dram_bandwidth_profile, worst_case_interference
from ..profiler.memory import (
    baseline_memory_profile,
    memory_breakdown,
    per_layer_profile,
)
from ..profiler.timing import layer_timing_profile
from ..sim.power import analyze_power
from ..zoo.registry import paper_conventional_networks, paper_very_deep_networks
from .tables import format_table, gb_str, mb_str, ms_str, pct_str


@dataclass
class FigureResult:
    """Computed data + rendering for one paper figure."""

    figure_id: str
    title: str
    headers: List[str]
    rows: List[List] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def text(self) -> str:
        body = format_table(self.headers, self.rows,
                            title=f"{self.figure_id}: {self.title}")
        if self.notes:
            body += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return body

    def to_dict(self) -> dict:
        """JSON-serializable form (for machine-readable experiment logs)."""
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[str(cell) for cell in row] for row in self.rows],
            "notes": list(self.notes),
        }

    def save_json(self, path: str) -> None:
        """Write :meth:`to_dict` as a JSON file."""
        import json

        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)


def _networks(networks: Optional[Sequence[Network]]) -> List[Network]:
    return list(networks) if networks is not None else paper_conventional_networks()


# ----------------------------------------------------------------------
def fig01_baseline_usage(
    networks: Optional[Sequence[Network]] = None,
    system: SystemConfig = PAPER_SYSTEM,
) -> FigureResult:
    """Figure 1: baseline allocation size vs. max layer-wise usage %."""
    result = FigureResult(
        "Figure 1", "Baseline network-wide memory allocation",
        ["network", "allocation", "max layer-wise usage", "usage %", "unused %"],
    )
    for network in _networks(networks):
        algos = AlgoConfig.performance_optimal(network)
        profile = baseline_memory_profile(network, algos)
        result.rows.append([
            network.name,
            mb_str(profile.allocation_bytes),
            mb_str(profile.max_layer_usage_bytes),
            pct_str(profile.max_usage_fraction),
            pct_str(profile.unused_fraction),
        ])
    result.notes.append(
        "paper: 53%-79% of the baseline allocation is never simultaneously live"
    )
    return result


def fig04_breakdown(
    networks: Optional[Sequence[Network]] = None,
) -> FigureResult:
    """Figure 4: memory usage by functionality + feature-map share."""
    result = FigureResult(
        "Figure 4", "GPU memory usage breakdown by functionality",
        ["network", "weights", "feature maps", "gradient maps",
         "workspace", "total", "feature maps %"],
    )
    for network in _networks(networks):
        algos = AlgoConfig.performance_optimal(network)
        b = memory_breakdown(network, algos)
        result.rows.append([
            network.name,
            mb_str(b["weights"]),
            mb_str(b["feature_maps"]),
            mb_str(b["gradient_maps"]),
            mb_str(b["workspace"]),
            mb_str(b["total"]),
            pct_str(b["feature_map_fraction"]),
        ])
    result.notes.append(
        "paper: the feature-map share grows monotonically with depth"
    )
    return result


def fig05_per_layer(network: Network) -> FigureResult:
    """Figure 5: per-layer memory usage of (by default) VGG-16 (256)."""
    algos = AlgoConfig.performance_optimal(network)
    result = FigureResult(
        "Figure 5", f"Per-layer memory usage of {network.name}",
        ["layer", "region", "feature maps", "workspace", "weights"],
    )
    for row in per_layer_profile(network, algos):
        result.rows.append([
            row.name, row.region,
            mb_str(row.feature_map_bytes),
            mb_str(row.workspace_bytes),
            mb_str(row.weight_bytes),
        ])
    result.notes.append(
        "paper: intermediate data dwarf weights in the feature-extraction "
        "layers; weights concentrate in the classifier"
    )
    return result


def fig06_reuse_distance(
    network: Network, system: SystemConfig = PAPER_SYSTEM
) -> FigureResult:
    """Figure 6: per-layer fwd/bwd latency and X reuse distance."""
    algos = AlgoConfig.performance_optimal(network)
    rows = layer_timing_profile(network, system, algos)
    result = FigureResult(
        "Figure 6", f"Per-layer latency and reuse distance of {network.name}",
        ["layer", "forward", "backward", "reuse distance"],
    )
    for row in rows:
        result.rows.append([
            row.name,
            ms_str(row.forward_seconds),
            ms_str(row.backward_seconds),
            ms_str(row.reuse_distance_seconds),
        ])
    if rows:
        result.notes.append(
            f"first-layer reuse distance: "
            f"{ms_str(rows[0].reuse_distance_seconds)} (paper: >1200 ms for "
            f"VGG-16 (64)'s first layer)"
        )
    return result


def fig09_timeline(
    network: Network, system: SystemConfig = PAPER_SYSTEM
) -> FigureResult:
    """Figure 9: offload/prefetch overlap on the two CUDA streams."""
    result_vdnn = evaluate(network, system, policy="all", algo="m")
    result = FigureResult(
        "Figure 9", f"Two-stream execution timeline of {network.name}",
        ["stream", "events"],
    )
    for stream in ("stream_compute", "stream_memory"):
        events = result_vdnn.timeline.on_stream(stream)
        result.rows.append([
            stream,
            " ".join(f"{e.kind.value}({e.label})@{e.start * 1e3:.1f}ms"
                     for e in events[:12]),
        ])
    result.notes.append(result_vdnn.timeline.render_ascii(width=100))
    return result


def _sweep_order() -> List[str]:
    return ["all(m)", "all(p)", "conv(m)", "conv(p)", "comp(m)",
            "comp(p)", "dyn", "joint", "base(m)", "base(p)"]


def _warm_policy_sweep(
    networks: Sequence[Network],
    system: SystemConfig,
    jobs: Optional[int],
    with_oracle: bool = False,
) -> None:
    """Pre-simulate every (network, config) point of a figure in parallel.

    With ``jobs > 1`` all points across all networks fan out at once —
    wider than per-network ``compare_policies(jobs=...)`` — and land in
    the content-addressed cache; the serial table assembly that follows
    then reads pure cache hits, so output is bit-identical to serial.
    """
    from ..core.api import cache_is_on
    from ..perf.sweep import SweepPoint, resolve_jobs, sweep

    if resolve_jobs(jobs) <= 1 or not cache_is_on():
        return
    points = []
    for network in networks:
        points += [
            SweepPoint(network=network, policy=policy, algo=algo, system=system)
            for policy in ("all", "conv", "comp", "base") for algo in ("m", "p")
        ]
        points.append(SweepPoint(network=network, policy="dyn", system=system))
        points.append(SweepPoint(network=network, policy="joint", system=system))
        if with_oracle:
            points.append(SweepPoint(
                network=network, policy="base", algo="p",
                system=system.with_oracular_gpu()))
    sweep(points, jobs=jobs)


def fig11_memory_usage(
    networks: Optional[Sequence[Network]] = None,
    system: SystemConfig = PAPER_SYSTEM,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Figure 11: avg & max memory usage per policy; savings vs. base.

    Untrainable configurations are marked ``*`` like the paper.
    ``jobs > 1`` simulates every (network, config) point concurrently.
    """
    result = FigureResult(
        "Figure 11", "Average and maximum GPU memory usage",
        ["network", "config", "avg", "max", "savings (avg)", "trainable"],
    )
    networks = _networks(networks)
    _warm_policy_sweep(networks, system, jobs)
    for network in networks:
        sweep = compare_policies(network, system)
        base = sweep["base(p)"]
        for key in _sweep_order():
            r = sweep[key]
            savings = 1.0 - (r.managed_avg_bytes + (
                r.external_bytes if r.policy_label == "base" else 0
            )) / base.max_usage_bytes
            star = "" if r.trainable else "*"
            result.rows.append([
                network.name, key + star,
                mb_str(r.avg_usage_bytes), mb_str(r.max_usage_bytes),
                pct_str(max(savings, 0.0)) if key != "base(p)" else "-",
                "yes" if r.trainable else "NO",
            ])
    result.notes.append(
        "paper: vDNN_all(m) cuts avg usage 73%-98%; configurations marked "
        "* exceed the Titan X's 12 GB"
    )
    return result


def fig12_offload_size(
    networks: Optional[Sequence[Network]] = None,
    system: SystemConfig = PAPER_SYSTEM,
) -> FigureResult:
    """Figure 12: bytes offloaded to pinned host memory per iteration."""
    result = FigureResult(
        "Figure 12", "Offloaded feature-map traffic to host memory",
        ["network", "vDNN_all offload", "vDNN_conv offload",
         "pinned peak (all)"],
    )
    for network in _networks(networks):
        r_all = evaluate(network, system, policy="all", algo="m")
        r_conv = evaluate(network, system, policy="conv", algo="m")
        result.rows.append([
            network.name,
            mb_str(r_all.offload_bytes),
            mb_str(r_conv.offload_bytes),
            mb_str(r_all.pinned_peak_bytes),
        ])
    result.notes.append(
        "paper: up to 16 GB of GPU memory savings for VGG-16 (256)"
    )
    return result


def fig13_dram_bandwidth(
    network: Network, system: SystemConfig = PAPER_SYSTEM
) -> FigureResult:
    """Figure 13: per-layer achieved DRAM bandwidth, fwd and bwd."""
    algos = AlgoConfig.performance_optimal(network)
    peak = system.gpu.dram_bandwidth
    result = FigureResult(
        "Figure 13", f"DRAM bandwidth utilization of {network.name}",
        ["layer", "forward GB/s", "backward GB/s", "fwd util", "bwd util"],
    )
    for row in dram_bandwidth_profile(network, system, algos):
        result.rows.append([
            row.name,
            f"{row.forward_bandwidth / 1e9:,.1f}",
            f"{row.backward_bandwidth / 1e9:,.1f}",
            pct_str(row.forward_utilization(peak)),
            pct_str(row.backward_utilization(peak)),
        ])
    result.notes.append(
        f"worst-case vDNN interference bound: "
        f"{pct_str(worst_case_interference(system))} (paper: 4.7%)"
    )
    return result


def fig14_performance(
    networks: Optional[Sequence[Network]] = None,
    system: SystemConfig = PAPER_SYSTEM,
    jobs: Optional[int] = None,
) -> FigureResult:
    """Figure 14: throughput normalized to the (oracular) baseline.

    ``jobs > 1`` simulates every (network, config) point — including the
    oracular baselines — concurrently.
    """
    result = FigureResult(
        "Figure 14", "Performance normalized to the oracular baseline",
        ["network", "config", "fe time", "normalized perf"],
    )
    networks = _networks(networks)
    _warm_policy_sweep(networks, system, jobs, with_oracle=True)
    for network in networks:
        sweep = compare_policies(network, system)
        oracle = oracular_baseline(network, system)
        for key in _sweep_order():
            r = sweep[key]
            star = "" if r.trainable else "*"
            normalized = (
                oracle.feature_extraction_time / r.feature_extraction_time
                if r.feature_extraction_time else 0.0
            )
            result.rows.append([
                network.name, key + star,
                ms_str(r.feature_extraction_time),
                f"{normalized:,.2f}",
            ])
    result.notes.append(
        "paper: static vDNN(m) loses 55%-58% on average; vDNN_dyn reaches "
        "97% of baseline (82% worst case, VGG-16 (256))"
    )
    return result


def fig15_very_deep(system: SystemConfig = PAPER_SYSTEM) -> FigureResult:
    """Figure 15: GPU/CPU allocation split for VGG-116..416 under dyn."""
    result = FigureResult(
        "Figure 15", "Very deep networks: memory placement under vDNN_dyn",
        ["network", "baseline alloc", "base trainable",
         "dyn GPU-side", "dyn CPU-side", "CPU share"],
    )
    for network in paper_very_deep_networks():
        base = evaluate(network, system, policy="base", algo="p")
        dyn = evaluate(network, system, policy="dyn")
        cpu = dyn.pinned_peak_bytes
        total = dyn.max_usage_bytes + cpu
        result.rows.append([
            network.name,
            gb_str(base.max_usage_bytes),
            "yes" if base.trainable else "NO",
            gb_str(dyn.max_usage_bytes),
            gb_str(cpu),
            pct_str(cpu / total if total else 0.0),
        ])
    result.notes.append(
        "paper: baseline grows 14x (4.9 GB to 67.1 GB); vDNN_dyn keeps the "
        "GPU side flat with 81%-92% of allocations resident in CPU memory"
    )
    return result


def power_section(
    networks: Optional[Sequence[Network]] = None,
    system: SystemConfig = PAPER_SYSTEM,
) -> FigureResult:
    """Section V-D: average/maximum GPU power, vDNN_dyn vs. baseline."""
    result = FigureResult(
        "Section V-D", "GPU power consumption (model)",
        ["network", "base avg W", "base max W", "dyn avg W", "dyn max W",
         "dyn max ovh", "conv(p) max ovh"],
    )
    for network in _networks(networks):
        base = oracular_baseline(network, system)
        dyn = evaluate(network, system, policy="dyn")
        conv = evaluate(network, system, policy="conv", algo="p")
        p_base = analyze_power(base.timeline, system.gpu)
        p_dyn = analyze_power(dyn.timeline, system.gpu)
        p_conv = analyze_power(conv.timeline, system.gpu)
        result.rows.append([
            network.name,
            f"{p_base.average_watts:,.0f}", f"{p_base.max_watts:,.0f}",
            f"{p_dyn.average_watts:,.0f}", f"{p_dyn.max_watts:,.0f}",
            pct_str(p_dyn.max_watts / p_base.max_watts - 1.0),
            pct_str(p_conv.max_watts / p_base.max_watts - 1.0),
        ])
    result.notes.append(
        "paper: vDNN_dyn adds 1%-7% maximum power, ~0% average power; the "
        "rise comes from offload/prefetch DMA traffic, so the conv(p) "
        "column (which always offloads) bounds it"
    )
    return result


def headline(
    system: SystemConfig = PAPER_SYSTEM,
    jobs: Optional[int] = None,
) -> FigureResult:
    """The abstract's headline numbers, recomputed.

    ``jobs > 1`` fans the underlying simulation points out across worker
    processes before the serial assembly below reads them as cache hits.
    """
    result = FigureResult(
        "Headline", "Abstract / Section V headline results",
        ["claim", "paper", "measured"],
    )
    specs = [("alexnet", 128, "89%"), ("overfeat", 128, "91%"),
             ("googlenet", 128, "95%")]
    from ..zoo.registry import build

    from ..core.api import cache_is_on
    from ..perf.sweep import SweepPoint, resolve_jobs, sweep as run_sweep

    if resolve_jobs(jobs) > 1 and cache_is_on():
        points = []
        for key, batch, _ in specs:
            points.append(SweepPoint(network=key, batch=batch, policy="base",
                                     algo="p", system=system))
            points.append(SweepPoint(network=key, batch=batch, policy="all",
                                     algo="m", system=system))
        points.append(SweepPoint(network="vgg16", batch=256, policy="base",
                                 algo="p", system=system))
        points.append(SweepPoint(network="vgg16", batch=256, policy="dyn",
                                 system=system))
        points.append(SweepPoint(network="vgg16", batch=256, policy="base",
                                 algo="p", system=system.with_oracular_gpu()))
        run_sweep(points, jobs=jobs)

    for key, batch, paper_value in specs:
        network = build(key, batch)
        base = evaluate(network, system, policy="base", algo="p")
        vdnn = evaluate(network, system, policy="all", algo="m")
        savings = 1.0 - vdnn.managed_avg_bytes / base.max_usage_bytes
        result.rows.append([
            f"{network.name} avg memory reduction", paper_value,
            pct_str(savings),
        ])
    vgg = build("vgg16", 256)
    base = evaluate(vgg, system, policy="base", algo="p")
    dyn = evaluate(vgg, system, policy="dyn")
    oracle = oracular_baseline(vgg, system)
    result.rows.append([
        "VGG-16 (256) trainable on 12 GB under vDNN", "yes",
        "yes" if dyn.trainable else "NO",
    ])
    result.rows.append([
        "VGG-16 (256) baseline needs", "28 GB", gb_str(base.max_usage_bytes),
    ])
    result.rows.append([
        "VGG-16 (256) perf loss vs oracular baseline", "18%",
        pct_str(max(1.0 - oracle.feature_extraction_time /
                    dyn.feature_extraction_time, 0.0)),
    ])
    return result

"""Reporting: table rendering and per-figure experiment drivers."""

from .figures import (
    FigureResult,
    fig01_baseline_usage,
    fig04_breakdown,
    fig05_per_layer,
    fig06_reuse_distance,
    fig09_timeline,
    fig11_memory_usage,
    fig12_offload_size,
    fig13_dram_bandwidth,
    fig14_performance,
    fig15_very_deep,
    headline,
    power_section,
)
from .tables import (
    format_bar,
    format_bar_chart,
    format_table,
    gb_str,
    mb_str,
    ms_str,
    pct_str,
)

__all__ = [
    "FigureResult",
    "fig01_baseline_usage",
    "fig04_breakdown",
    "fig05_per_layer",
    "fig06_reuse_distance",
    "fig09_timeline",
    "fig11_memory_usage",
    "fig12_offload_size",
    "fig13_dram_bandwidth",
    "fig14_performance",
    "fig15_very_deep",
    "format_bar",
    "format_bar_chart",
    "format_table",
    "gb_str",
    "headline",
    "mb_str",
    "ms_str",
    "pct_str",
    "power_section",
]

"""Plain-text table and series rendering for benchmark output.

Every benchmark prints the rows/series of its paper figure through these
helpers so EXPERIMENTS.md, CI logs and interactive runs all look alike.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Fixed-width table with a rule under the header."""
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def format_bar(value: float, maximum: float, width: int = 40) -> str:
    """One ASCII bar scaled to ``maximum``."""
    if maximum <= 0:
        return ""
    filled = int(round(min(value / maximum, 1.0) * width))
    return "#" * filled


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    unit: str = "",
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Horizontal ASCII bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    maximum = max(values, default=0.0)
    label_width = max((len(l) for l in labels), default=0)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for label, value in zip(labels, values):
        bar = format_bar(value, maximum, width)
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| "
                     f"{value:,.1f}{unit}")
    return "\n".join(lines)


def mb_str(nbytes: float) -> str:
    return f"{nbytes / (1 << 20):,.0f} MB"


def gb_str(nbytes: float) -> str:
    return f"{nbytes / (1 << 30):,.2f} GB"


def ms_str(seconds: float) -> str:
    return f"{seconds * 1e3:,.2f} ms"


def pct_str(fraction: float) -> str:
    return f"{fraction * 100:,.1f}%"

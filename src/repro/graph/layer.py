"""Layer taxonomy for the feedforward CNNs the paper studies.

The paper groups layers into CONV / ACTV / POOL / FC (Section II-A) with a
few auxiliaries needed by the actual ImageNet-winning models: local response
normalization (AlexNet, GoogLeNet), dropout (classifier blocks), concat
(GoogLeNet inception joins) and the terminal softmax.  Each layer knows

* how to infer its output :class:`~repro.graph.tensor.TensorSpec` from its
  input specs,
* the size of its weights (if any),
* whether it runs **in-place** (ACTV layers share storage with their input,
  footnote 1 of the paper), and
* which of its tensors the **backward** pass reads — this is what decides
  whether its input X must be kept (and is therefore worth offloading).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .shapes import conv_out_dim, pool_out_dim
from .tensor import TensorSpec


class LayerKind(enum.Enum):
    """Coarse layer category used by the memory-transfer policies."""

    INPUT = "INPUT"
    CONV = "CONV"
    ACTV = "ACTV"
    POOL = "POOL"
    LRN = "LRN"
    FC = "FC"
    DROPOUT = "DROPOUT"
    CONCAT = "CONCAT"
    ADD = "ADD"
    MUL = "MUL"
    BN = "BN"
    SLICE = "SLICE"
    SOFTMAX = "SOFTMAX"


class PoolMode(enum.Enum):
    MAX = "max"
    AVG = "avg"


class ActivationKind(enum.Enum):
    RELU = "relu"
    SIGMOID = "sigmoid"
    TANH = "tanh"


@dataclass
class Layer:
    """Base class: a named node with a single output feature map."""

    name: str
    inputs: List[str] = field(default_factory=list)

    #: Set by subclasses.
    kind: LayerKind = field(default=LayerKind.INPUT, init=False)

    # ------------------------------------------------------------------
    # Interface expected by Network / managers / numerics
    # ------------------------------------------------------------------
    def infer_output(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        """Output feature-map spec given the producer layers' outputs."""
        raise NotImplementedError

    def weight_spec(self, input_specs: Sequence[TensorSpec]) -> Optional[TensorSpec]:
        """Spec of this layer's weights (None for weight-less layers)."""
        return None

    def bias_spec(self, input_specs: Sequence[TensorSpec]) -> Optional[TensorSpec]:
        """Spec of this layer's bias vector (None when there is none)."""
        return None

    @property
    def in_place(self) -> bool:
        """True when the layer writes its output over its input storage."""
        return False

    @property
    def backward_needs_x(self) -> bool:
        """True when the backward pass reads the input feature map X."""
        return True

    @property
    def backward_needs_y(self) -> bool:
        """True when the backward pass reads the output feature map Y."""
        return False

    @property
    def has_weights(self) -> bool:
        return self.kind in (LayerKind.CONV, LayerKind.FC)

    def _expect_inputs(self, input_specs: Sequence[TensorSpec], n: int) -> None:
        if len(input_specs) != n:
            raise ValueError(
                f"layer {self.name!r} ({self.kind.value}) expects {n} "
                f"input(s), got {len(input_specs)}"
            )


@dataclass
class Input(Layer):
    """Source node holding one image batch (N, C, H, W).

    ``dtype_bytes`` here sets the precision of the *whole network*:
    every layer derives its output/weight dtype from its input, so fp16
    (2) flows from this one knob (the paper's related work discusses
    reduced precision as a complementary memory saver).
    """

    shape: Tuple[int, int, int, int] = (1, 3, 224, 224)
    dtype_bytes: int = 4

    def __post_init__(self) -> None:
        self.kind = LayerKind.INPUT

    def infer_output(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        self._expect_inputs(input_specs, 0)
        return TensorSpec(self.shape, self.dtype_bytes)

    @property
    def backward_needs_x(self) -> bool:
        return False


@dataclass
class Conv2D(Layer):
    """2-D convolution (the paper's CONV layer).

    ``tied_to`` names another layer whose parameters this layer shares
    (weight tying, as in unrolled recurrent networks): the tied layer
    allocates no parameters of its own and its weight gradients
    accumulate into the root layer's.
    """

    out_channels: int = 1
    kernel: int = 3
    stride: int = 1
    pad: int = 0
    bias: bool = True
    tied_to: Optional[str] = None

    def __post_init__(self) -> None:
        self.kind = LayerKind.CONV
        if self.out_channels <= 0 or self.kernel <= 0 or self.stride <= 0:
            raise ValueError(f"invalid Conv2D geometry for layer {self.name!r}")
        if self.pad < 0:
            raise ValueError(f"negative padding on layer {self.name!r}")

    def infer_output(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        self._expect_inputs(input_specs, 1)
        n, _, h, w = input_specs[0].shape
        oh = conv_out_dim(h, self.kernel, self.stride, self.pad)
        ow = conv_out_dim(w, self.kernel, self.stride, self.pad)
        return TensorSpec((n, self.out_channels, oh, ow),
                          input_specs[0].dtype_bytes)

    def weight_spec(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        self._expect_inputs(input_specs, 1)
        in_channels = input_specs[0].shape[1]
        return TensorSpec(
            (self.out_channels, in_channels, self.kernel, self.kernel),
            input_specs[0].dtype_bytes,
        )

    def bias_spec(self, input_specs: Sequence[TensorSpec]) -> Optional[TensorSpec]:
        if not self.bias:
            return None
        return TensorSpec((self.out_channels,), input_specs[0].dtype_bytes)

    @property
    def backward_needs_x(self) -> bool:
        return True  # dW = X * dY; the whole point of offloading


@dataclass
class Activation(Layer):
    """Element-wise activation, refactored in-place (paper footnote 1).

    Backward uses only (Y, dY); cuDNN's ReLU/sigmoid/tanh backward can be
    computed from the output alone, which is what makes the in-place
    optimization legal and removes any need to offload ACTV inputs.
    """

    activation: ActivationKind = ActivationKind.RELU

    def __post_init__(self) -> None:
        self.kind = LayerKind.ACTV

    def infer_output(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        self._expect_inputs(input_specs, 1)
        return input_specs[0]

    @property
    def in_place(self) -> bool:
        return True

    @property
    def backward_needs_x(self) -> bool:
        return False

    @property
    def backward_needs_y(self) -> bool:
        return True


@dataclass
class Pool2D(Layer):
    """Spatial pooling.  Max pooling's backward reads both X and Y."""

    mode: PoolMode = PoolMode.MAX
    kernel: int = 2
    stride: int = 2
    pad: int = 0

    def __post_init__(self) -> None:
        self.kind = LayerKind.POOL
        if self.kernel <= 0 or self.stride <= 0 or self.pad < 0:
            raise ValueError(f"invalid Pool2D geometry for layer {self.name!r}")

    def infer_output(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        self._expect_inputs(input_specs, 1)
        n, c, h, w = input_specs[0].shape
        oh = pool_out_dim(h, self.kernel, self.stride, self.pad)
        ow = pool_out_dim(w, self.kernel, self.stride, self.pad)
        return TensorSpec((n, c, oh, ow), input_specs[0].dtype_bytes)

    @property
    def backward_needs_x(self) -> bool:
        return self.mode is PoolMode.MAX

    @property
    def backward_needs_y(self) -> bool:
        return self.mode is PoolMode.MAX


@dataclass
class LRN(Layer):
    """Local response normalization (AlexNet / GoogLeNet).

    cuDNN's LRN backward reads X, Y and dY, so like CONV its X must
    survive until backward propagation.
    """

    local_size: int = 5
    alpha: float = 1e-4
    beta: float = 0.75
    k: float = 1.0

    def __post_init__(self) -> None:
        self.kind = LayerKind.LRN

    def infer_output(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        self._expect_inputs(input_specs, 1)
        return input_specs[0]

    @property
    def backward_needs_y(self) -> bool:
        return True


@dataclass
class FullyConnected(Layer):
    """Fully-connected (classifier) layer; flattens 4-D inputs.

    ``tied_to`` shares parameters with another FC layer (see
    :class:`Conv2D`).
    """

    out_features: int = 1000
    bias: bool = True
    tied_to: Optional[str] = None

    def __post_init__(self) -> None:
        self.kind = LayerKind.FC
        if self.out_features <= 0:
            raise ValueError(f"invalid FC width on layer {self.name!r}")

    @staticmethod
    def _in_features(spec: TensorSpec) -> int:
        return spec.count // spec.batch

    def infer_output(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        self._expect_inputs(input_specs, 1)
        return TensorSpec((input_specs[0].batch, self.out_features),
                          input_specs[0].dtype_bytes)

    def weight_spec(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        self._expect_inputs(input_specs, 1)
        return TensorSpec(
            (self.out_features, self._in_features(input_specs[0])),
            input_specs[0].dtype_bytes,
        )

    def bias_spec(self, input_specs: Sequence[TensorSpec]) -> Optional[TensorSpec]:
        if not self.bias:
            return None
        return TensorSpec((self.out_features,), input_specs[0].dtype_bytes)


@dataclass
class Dropout(Layer):
    """Classifier-block dropout; in-place like ACTV, keeps a mask."""

    rate: float = 0.5

    def __post_init__(self) -> None:
        self.kind = LayerKind.DROPOUT
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1): {self.rate}")

    def infer_output(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        self._expect_inputs(input_specs, 1)
        return input_specs[0]

    @property
    def in_place(self) -> bool:
        return True

    @property
    def backward_needs_x(self) -> bool:
        return False


@dataclass
class Concat(Layer):
    """Channel-wise concatenation (GoogLeNet inception join)."""

    def __post_init__(self) -> None:
        self.kind = LayerKind.CONCAT

    def infer_output(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        if len(input_specs) < 2:
            raise ValueError(f"concat layer {self.name!r} needs >= 2 inputs")
        n, _, h, w = input_specs[0].shape
        for spec in input_specs[1:]:
            if spec.shape[0] != n or spec.shape[2:] != (h, w):
                raise ValueError(
                    f"concat layer {self.name!r}: incompatible shapes "
                    f"{[s.shape for s in input_specs]}"
                )
        channels = sum(spec.shape[1] for spec in input_specs)
        return TensorSpec((n, channels, h, w), input_specs[0].dtype_bytes)

    @property
    def backward_needs_x(self) -> bool:
        return False  # backward is a pure split of dY


@dataclass
class Slice(Layer):
    """Channel-range selection (the inverse of :class:`Concat`).

    Used to cut per-timestep inputs out of a packed sequence batch for
    unrolled recurrent networks (the paper: its intuitions apply to
    "recurrent neural networks for natural language processing" too).
    Backward scatters dY into the selected range; it reads neither X
    nor Y.
    """

    begin: int = 0
    end: int = 1

    def __post_init__(self) -> None:
        self.kind = LayerKind.SLICE
        if self.begin < 0 or self.end <= self.begin:
            raise ValueError(
                f"invalid slice [{self.begin}, {self.end}) on layer "
                f"{self.name!r}"
            )

    def infer_output(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        self._expect_inputs(input_specs, 1)
        shape = input_specs[0].shape
        if self.end > shape[1]:
            raise ValueError(
                f"slice [{self.begin}, {self.end}) exceeds the {shape[1]} "
                f"channels of layer {self.name!r}'s input"
            )
        return TensorSpec(
            (shape[0], self.end - self.begin) + shape[2:],
            input_specs[0].dtype_bytes,
        )

    @property
    def backward_needs_x(self) -> bool:
        return False


@dataclass
class EltwiseAdd(Layer):
    """Element-wise sum of residual branches (ResNet shortcut joins).

    The paper notes its intuitions apply to "any neural network that
    exhibits layer-wise computational characteristics"; residual
    networks (He et al., cited as [15]) need exactly this join.  Its
    backward is a pure fan-out of dY, so no input must survive forward
    propagation on its account — but its inputs usually must survive for
    *their own* producers' backward, making the ADD the refcount-gated
    last consumer vDNN offloads at.
    """

    def __post_init__(self) -> None:
        self.kind = LayerKind.ADD

    def infer_output(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        if len(input_specs) < 2:
            raise ValueError(f"add layer {self.name!r} needs >= 2 inputs")
        first = input_specs[0]
        for spec in input_specs[1:]:
            if spec.shape != first.shape:
                raise ValueError(
                    f"add layer {self.name!r}: shape mismatch "
                    f"{[s.shape for s in input_specs]}"
                )
        return first

    @property
    def backward_needs_x(self) -> bool:
        return False  # dX_i = dY for every branch


@dataclass
class EltwiseMul(Layer):
    """Element-wise (Hadamard) product — LSTM/GRU gating.

    Unlike ADD, multiplication's backward reads **both** operands
    (``d a = dY * b`` and vice versa), so every input storage must
    survive until backward propagation — gated recurrences therefore
    generate more offload candidates per step than plain RNNs.
    """

    def __post_init__(self) -> None:
        self.kind = LayerKind.MUL

    def infer_output(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        if len(input_specs) != 2:
            raise ValueError(f"mul layer {self.name!r} needs exactly 2 inputs")
        a, b = input_specs
        if a.shape != b.shape:
            raise ValueError(
                f"mul layer {self.name!r}: shape mismatch {a.shape} vs "
                f"{b.shape}"
            )
        return a

    @property
    def backward_needs_x(self) -> bool:
        return True


@dataclass
class BatchNorm(Layer):
    """Batch normalization (Ioffe & Szegedy, 2015) over the channel dim.

    cuDNN's BN backward reads X (to rebuild x-hat from the saved batch
    statistics), so like CONV its input must survive until backward —
    BN layers are therefore genuine offload candidates under vDNN_all.
    Scale (gamma) is the layer's weight, shift (beta) its bias.
    """

    epsilon: float = 1e-5

    def __post_init__(self) -> None:
        self.kind = LayerKind.BN
        if self.epsilon <= 0:
            raise ValueError(f"non-positive epsilon on layer {self.name!r}")

    def infer_output(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        self._expect_inputs(input_specs, 1)
        return input_specs[0]

    def weight_spec(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        self._expect_inputs(input_specs, 1)
        channels = input_specs[0].shape[1]
        return TensorSpec((channels,), input_specs[0].dtype_bytes)

    def bias_spec(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        self._expect_inputs(input_specs, 1)
        channels = input_specs[0].shape[1]
        return TensorSpec((channels,), input_specs[0].dtype_bytes)

    @property
    def has_weights(self) -> bool:
        return True

    @property
    def backward_needs_x(self) -> bool:
        return True


@dataclass
class Softmax(Layer):
    """Terminal softmax; combined with cross-entropy in the numerics."""

    def __post_init__(self) -> None:
        self.kind = LayerKind.SOFTMAX

    def infer_output(self, input_specs: Sequence[TensorSpec]) -> TensorSpec:
        self._expect_inputs(input_specs, 1)
        return input_specs[0]

    @property
    def backward_needs_x(self) -> bool:
        return False

    @property
    def backward_needs_y(self) -> bool:
        return True

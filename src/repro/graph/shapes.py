"""Shape-inference helpers shared by the layer taxonomy.

All functions use the cuDNN/Caffe convention: an input plane of extent
``size`` filtered with a ``kernel`` at ``stride`` and symmetric ``pad``
produces ``floor((size + 2*pad - kernel) / stride) + 1`` output elements.
Pooling layers in Caffe (and the reference models the paper uses) round
*up* instead, so a separate helper is provided.
"""

from __future__ import annotations


def conv_out_dim(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output extent of a convolution along one spatial axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive extent: size={size} "
            f"kernel={kernel} stride={stride} pad={pad}"
        )
    return out


def pool_out_dim(size: int, kernel: int, stride: int, pad: int) -> int:
    """Output extent of a pooling window (ceil mode, Caffe-compatible)."""
    out = -(-(size + 2 * pad - kernel) // stride) + 1  # ceil division
    if pad > 0 and (out - 1) * stride >= size + pad:
        # Caffe clips windows that start entirely inside the padding.
        out -= 1
    if out <= 0:
        raise ValueError(
            f"pooling produces non-positive extent: size={size} "
            f"kernel={kernel} stride={stride} pad={pad}"
        )
    return out

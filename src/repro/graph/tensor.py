"""Tensor metadata used throughout the simulator and the numerics backend.

The memory-management questions the paper asks (how big is a layer's input
feature map X, its output Y, its gradients dX/dY, its weights W and its
convolution workspace WS — and when is each one live) only need tensor
*shapes* and *roles*.  :class:`TensorSpec` carries exactly that.  The
numerics backend attaches real ``numpy`` buffers to the same specs.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Tuple


class TensorRole(enum.Enum):
    """What a tensor is used for, mirroring the paper's Figure 2 labels."""

    FEATURE_MAP = "X/Y"     # layer input/output feature maps
    GRADIENT_MAP = "dX/dY"  # input/output gradient maps
    WEIGHT = "W"            # layer weights (and biases)
    WEIGHT_GRADIENT = "dW"  # weight gradients
    WORKSPACE = "WS"        # temporary convolution workspace


#: Bytes per element for the single-precision floats used by the paper.
FP32_BYTES = 4


@dataclass(frozen=True)
class TensorSpec:
    """Shape + dtype description of one tensor.

    Shapes follow cuDNN's NCHW convention for feature maps.  Weights and
    flat buffers may use fewer dimensions; only the element count matters
    for memory accounting.
    """

    shape: Tuple[int, ...]
    dtype_bytes: int = FP32_BYTES

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("TensorSpec requires a non-empty shape")
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"TensorSpec dimensions must be positive: {self.shape}")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")

    @property
    def count(self) -> int:
        """Number of elements."""
        return math.prod(self.shape)

    @property
    def nbytes(self) -> int:
        """Total size in bytes."""
        return self.count * self.dtype_bytes

    @property
    def batch(self) -> int:
        """Leading (N) dimension."""
        return self.shape[0]

    def with_batch(self, batch: int) -> "TensorSpec":
        """Return the same spec with a different leading dimension."""
        return TensorSpec((batch,) + self.shape[1:], self.dtype_bytes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(d) for d in self.shape)
        return f"{dims}:{self.nbytes / (1 << 20):.1f}MB"


def mb(nbytes: float) -> float:
    """Convert bytes to mebibytes (the unit the paper's figures use)."""
    return nbytes / (1 << 20)


def gb(nbytes: float) -> float:
    """Convert bytes to gibibytes."""
    return nbytes / (1 << 30)

"""DNN dataflow graph: tensors, layers, shape inference, networks."""

from .builder import NetworkBuilder
from .layer import (
    Activation,
    ActivationKind,
    BatchNorm,
    Concat,
    Conv2D,
    Dropout,
    EltwiseAdd,
    EltwiseMul,
    FullyConnected,
    Input,
    Layer,
    LayerKind,
    LRN,
    Pool2D,
    PoolMode,
    Slice,
    Softmax,
)
from .network import GraphError, Network, NetworkNode
from .tensor import FP32_BYTES, TensorRole, TensorSpec, gb, mb

__all__ = [
    "Activation",
    "ActivationKind",
    "BatchNorm",
    "Concat",
    "Conv2D",
    "Dropout",
    "EltwiseAdd",
    "EltwiseMul",
    "FP32_BYTES",
    "FullyConnected",
    "GraphError",
    "Input",
    "LRN",
    "Layer",
    "LayerKind",
    "Network",
    "NetworkBuilder",
    "NetworkNode",
    "Pool2D",
    "PoolMode",
    "Slice",
    "Softmax",
    "TensorRole",
    "TensorSpec",
    "gb",
    "mb",
]

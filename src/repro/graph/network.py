"""The DNN dataflow graph: nodes, dependency edges, refcounts, schedules.

The vDNN memory manager "keeps track of the inter-layer dependencies in the
form of a dataflow graph (e.g., Refcnt in Figure 3)" — this module is that
graph.  A :class:`Network` owns an ordered set of :class:`NetworkNode`
objects, each describing one layer, its inferred tensor shapes, the storage
aliasing induced by in-place ACTV/DROPOUT layers, and the consumer
refcounts that gate offload/release decisions for fork/join topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from .layer import Layer, LayerKind
from .tensor import TensorSpec


class GraphError(ValueError):
    """Raised for malformed network topologies."""


@dataclass
class NetworkNode:
    """One layer plus everything the schedulers need to know about it.

    Attributes:
        index: position in the forward (topological) schedule.
        layer: the layer object itself.
        output_spec: spec of this layer's output feature map Y.
        weight_spec / bias_spec: parameter specs, or None.
        consumers: indices of layers reading this node's Y (``Refcnt`` in
            the paper's Figure 3 is ``len(consumers)``).
        producers: indices of layers whose Y this node reads as X.
        storage_index: index of the node that *owns* the storage this
            node's Y lives in.  Equal to ``index`` unless the layer runs
            in-place, in which case it points at (the storage owner of)
            its producer.
        weight_root: index of the node that owns this node's parameters
            (differs from ``index`` only for weight-tied layers).
        is_feature_extraction: True for layers ahead of the first FC
            layer — the region vDNN targets (Section III).
    """

    index: int
    layer: Layer
    output_spec: TensorSpec
    weight_spec: Optional[TensorSpec] = None
    bias_spec: Optional[TensorSpec] = None
    consumers: List[int] = field(default_factory=list)
    producers: List[int] = field(default_factory=list)
    storage_index: int = -1
    weight_root: int = -1
    is_feature_extraction: bool = True

    @property
    def name(self) -> str:
        return self.layer.name

    @property
    def kind(self) -> LayerKind:
        return self.layer.kind

    @property
    def refcount(self) -> int:
        """Number of consumer layers of this node's Y (Figure 3)."""
        return len(self.consumers)

    @property
    def in_place(self) -> bool:
        """Whether this node actually aliases its producer's storage."""
        return self.storage_index != self.index

    @property
    def is_weight_tied(self) -> bool:
        return self.weight_root != self.index

    @property
    def weight_tensor_bytes(self) -> int:
        """Size of the parameter tensors this layer's kernels touch
        (nonzero even when the parameters are shared)."""
        total = self.weight_spec.nbytes if self.weight_spec else 0
        total += self.bias_spec.nbytes if self.bias_spec else 0
        return total

    @property
    def weight_bytes(self) -> int:
        """Parameter bytes this layer *owns* (0 for tied layers)."""
        return 0 if self.is_weight_tied else self.weight_tensor_bytes


class Network:
    """An immutable, validated, topologically-ordered DNN graph."""

    def __init__(self, name: str, layers: Sequence[Layer]):
        self.name = name
        self._nodes: List[NetworkNode] = []
        self._by_name: Dict[str, NetworkNode] = {}
        self._build(list(layers))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, layers: List[Layer]) -> None:
        if not layers:
            raise GraphError("network has no layers")

        sources = [l for l in layers if not l.inputs]
        if len(sources) != 1 or sources[0].kind is not LayerKind.INPUT:
            raise GraphError(
                f"network {self.name!r} must have exactly one Input layer "
                f"as its only source, found sources "
                f"{[l.name for l in sources]}"
            )

        order = self._topological_order(layers)
        name_to_index = {layer.name: i for i, layer in enumerate(order)}

        for index, layer in enumerate(order):
            producer_indices = [name_to_index[n] for n in layer.inputs]
            input_specs = [self._nodes[p].output_spec for p in producer_indices]
            node = NetworkNode(
                index=index,
                layer=layer,
                output_spec=layer.infer_output(input_specs),
                weight_spec=layer.weight_spec(input_specs),
                bias_spec=layer.bias_spec(input_specs),
                producers=producer_indices,
            )
            for p in producer_indices:
                self._nodes[p].consumers.append(index)
            self._nodes.append(node)
            self._by_name[layer.name] = node

        self._assign_storage()
        self._resolve_weight_ties()
        self._mark_regions()
        self._validate()

    @staticmethod
    def _topological_order(layers: List[Layer]) -> List[Layer]:
        by_name: Dict[str, Layer] = {}
        for layer in layers:
            if layer.name in by_name:
                raise GraphError(f"duplicate layer name {layer.name!r}")
            by_name[layer.name] = layer

        for layer in layers:
            for dep in layer.inputs:
                if dep not in by_name:
                    raise GraphError(
                        f"layer {layer.name!r} references unknown input {dep!r}"
                    )

        # Kahn's algorithm, stable with respect to the declaration order so
        # that builder-emitted networks keep their natural layer numbering.
        remaining_deps = {layer.name: set(layer.inputs) for layer in layers}
        ordered: List[Layer] = []
        ready = [l for l in layers if not remaining_deps[l.name]]
        consumers: Dict[str, List[Layer]] = {l.name: [] for l in layers}
        for layer in layers:
            for dep in layer.inputs:
                consumers[dep].append(layer)

        while ready:
            layer = ready.pop(0)
            ordered.append(layer)
            for consumer in consumers[layer.name]:
                deps = remaining_deps[consumer.name]
                deps.discard(layer.name)
                if not deps and consumer not in ready and consumer not in ordered:
                    ready.append(consumer)

        if len(ordered) != len(layers):
            stuck = [l.name for l in layers if l not in ordered]
            raise GraphError(f"network contains a cycle involving {stuck}")
        return ordered

    def _assign_storage(self) -> None:
        for node in self._nodes:
            node.storage_index = node.index
            if not node.layer.in_place or not node.producers:
                continue
            producer = self._nodes[node.producers[0]]
            # Running in-place over a producer whose output has other
            # consumers would corrupt those consumers' inputs; fall back
            # to out-of-place in that case (Torch does the same).
            if len(producer.consumers) == 1:
                node.storage_index = producer.storage_index

    def _resolve_weight_ties(self) -> None:
        for node in self._nodes:
            node.weight_root = node.index
        for node in self._nodes:
            tied_to = getattr(node.layer, "tied_to", None)
            if tied_to is None:
                continue
            root = self._by_name.get(tied_to)
            if root is None:
                raise GraphError(
                    f"layer {node.name!r} is tied to unknown layer "
                    f"{tied_to!r}"
                )
            if root.index >= node.index:
                raise GraphError(
                    f"layer {node.name!r} must be tied to an *earlier* "
                    f"layer, not {tied_to!r}"
                )
            if (root.weight_spec, root.bias_spec) != \
                    (node.weight_spec, node.bias_spec):
                raise GraphError(
                    f"layer {node.name!r} cannot share parameters with "
                    f"{tied_to!r}: specs differ"
                )
            node.weight_root = root.weight_root

    def _mark_regions(self) -> None:
        """Split feature extraction from the classifier (paper §II-A).

        Convolutional networks switch regions at the first FC layer.
        Networks without any CONV layer (e.g. unrolled RNNs built from
        FC recurrences) keep everything up to the *last* FC — the head —
        in the managed region, since their FC body plays the
        feature-extraction role.
        """
        fc_indices = [n.index for n in self._nodes if n.kind is LayerKind.FC]
        has_conv = any(n.kind is LayerKind.CONV for n in self._nodes)
        if not fc_indices:
            boundary = len(self._nodes)
        elif has_conv:
            boundary = fc_indices[0]
        else:
            boundary = fc_indices[-1]
        for node in self._nodes:
            node.is_feature_extraction = node.index < boundary

    def _validate(self) -> None:
        inputs = [n for n in self._nodes if n.kind is LayerKind.INPUT]
        if len(inputs) != 1:
            raise GraphError(
                f"network {self.name!r} must have exactly one Input layer, "
                f"found {len(inputs)}"
            )
        if inputs[0].index != 0:
            raise GraphError("the Input layer must be the topological source")
        for node in self._nodes[1:]:
            if not node.producers:
                raise GraphError(
                    f"layer {node.name!r} is disconnected (no inputs)"
                )
        batch = inputs[0].output_spec.batch
        for node in self._nodes:
            if node.output_spec.batch != batch:
                raise GraphError(
                    f"layer {node.name!r} changes the batch dimension"
                )

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterable[NetworkNode]:
        return iter(self._nodes)

    def __getitem__(self, index: int) -> NetworkNode:
        return self._nodes[index]

    def node(self, name: str) -> NetworkNode:
        try:
            return self._by_name[name]
        except KeyError:
            raise GraphError(f"no layer named {name!r} in {self.name!r}") from None

    @property
    def nodes(self) -> List[NetworkNode]:
        return list(self._nodes)

    @property
    def batch_size(self) -> int:
        return self._nodes[0].output_spec.batch

    @property
    def input_node(self) -> NetworkNode:
        return self._nodes[0]

    @property
    def output_node(self) -> NetworkNode:
        sinks = [n for n in self._nodes if not n.consumers]
        return sinks[-1]

    def forward_schedule(self) -> List[int]:
        """Layer indices in forward-propagation order."""
        return [n.index for n in self._nodes]

    def backward_schedule(self) -> List[int]:
        """Layer indices in backward-propagation order (paper Fig. 8).

        The input layer has no backward computation and is excluded.
        """
        return [n.index for n in reversed(self._nodes) if n.kind is not LayerKind.INPUT]

    def storage_owner(self, index: int) -> NetworkNode:
        """Resolve in-place aliasing to the node owning the actual buffer."""
        return self._nodes[self._nodes[index].storage_index]

    def layers_of_kind(self, *kinds: LayerKind) -> List[NetworkNode]:
        return [n for n in self._nodes if n.kind in kinds]

    @property
    def conv_layers(self) -> List[NetworkNode]:
        return self.layers_of_kind(LayerKind.CONV)

    @property
    def feature_extraction_nodes(self) -> List[NetworkNode]:
        return [n for n in self._nodes if n.is_feature_extraction]

    @property
    def classifier_nodes(self) -> List[NetworkNode]:
        return [n for n in self._nodes if not n.is_feature_extraction]

    def total_weight_bytes(self) -> int:
        return sum(n.weight_bytes for n in self._nodes)

    def with_batch_size(self, batch: int) -> "Network":
        """Clone this network with a different input batch size."""
        import copy

        layers = []
        for node in self._nodes:
            layer = copy.deepcopy(node.layer)
            if node.kind is LayerKind.INPUT:
                layer.shape = (batch,) + tuple(layer.shape[1:])
            layers.append(layer)
        return Network(self.name, layers)

    def with_dtype_bytes(self, dtype_bytes: int) -> "Network":
        """Clone this network at a different numeric precision.

        Precision flows from the Input layer through every inferred
        spec, so halving ``dtype_bytes`` (fp32 -> fp16) halves every
        feature-map, gradient and weight allocation.
        """
        import copy

        layers = []
        for node in self._nodes:
            layer = copy.deepcopy(node.layer)
            if node.kind is LayerKind.INPUT:
                layer.dtype_bytes = dtype_bytes
            layers.append(layer)
        return Network(self.name, layers)

    def summary(self) -> str:
        """Human-readable per-layer table (name, kind, Y shape, params)."""
        lines = [f"Network {self.name!r}: {len(self)} layers, "
                 f"batch {self.batch_size}"]
        for node in self._nodes:
            region = "feat" if node.is_feature_extraction else "clsf"
            flags = []
            if node.in_place:
                flags.append("in-place")
            if node.refcount > 1:
                flags.append(f"refcnt={node.refcount}")
            lines.append(
                f"  [{node.index:3d}] {node.name:<24s} {node.kind.value:<8s}"
                f" {region} Y={node.output_spec} W={node.weight_bytes // 1024}KB"
                f" {' '.join(flags)}"
            )
        return "\n".join(lines)

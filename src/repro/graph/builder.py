"""Fluent builder for assembling networks without hand-writing edge lists.

The builder keeps a "cursor" on the most recently added layer so linear
chains read naturally::

    net = (NetworkBuilder("toy", input_shape=(8, 3, 32, 32))
           .conv(16, kernel=3, pad=1).relu().pool()
           .fc(10).softmax().build())

Branching (GoogLeNet-style fork/join) is explicit: capture the cursor with
:meth:`tap`, start branches from it with ``after=``, then merge with
:meth:`concat`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .layer import (
    Activation,
    ActivationKind,
    BatchNorm,
    Concat,
    Conv2D,
    Dropout,
    EltwiseAdd,
    EltwiseMul,
    FullyConnected,
    Input,
    Layer,
    LRN,
    Pool2D,
    PoolMode,
    Slice,
    Softmax,
)
from .network import Network


class NetworkBuilder:
    """Incrementally constructs a :class:`~repro.graph.network.Network`."""

    def __init__(self, name: str, input_shape: Tuple[int, int, int, int],
                 dtype_bytes: int = 4):
        self.name = name
        self._layers: List[Layer] = []
        self._counts: dict = {}
        self._cursor: Optional[str] = None
        self._add(Input(self._fresh("input"), shape=tuple(input_shape),
                        dtype_bytes=dtype_bytes))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        n = self._counts.get(prefix, 0) + 1
        self._counts[prefix] = n
        return f"{prefix}_{n:02d}"

    def _add(self, layer: Layer) -> str:
        self._layers.append(layer)
        self._cursor = layer.name
        return layer.name

    def _resolve(self, after: Optional[str]) -> str:
        source = after if after is not None else self._cursor
        if source is None:
            raise ValueError("builder has no current layer to attach to")
        return source

    # ------------------------------------------------------------------
    # Layer verbs
    # ------------------------------------------------------------------
    def conv(
        self,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        pad: int = 0,
        name: Optional[str] = None,
        after: Optional[str] = None,
        tied_to: Optional[str] = None,
    ) -> "NetworkBuilder":
        self._add(Conv2D(
            name or self._fresh("conv"),
            inputs=[self._resolve(after)],
            out_channels=out_channels,
            kernel=kernel,
            stride=stride,
            pad=pad,
            tied_to=tied_to,
        ))
        return self

    def relu(self, name: Optional[str] = None, after: Optional[str] = None) -> "NetworkBuilder":
        self._add(Activation(
            name or self._fresh("relu"),
            inputs=[self._resolve(after)],
            activation=ActivationKind.RELU,
        ))
        return self

    def tanh(self, name: Optional[str] = None, after: Optional[str] = None) -> "NetworkBuilder":
        self._add(Activation(
            name or self._fresh("tanh"),
            inputs=[self._resolve(after)],
            activation=ActivationKind.TANH,
        ))
        return self

    def sigmoid(self, name: Optional[str] = None, after: Optional[str] = None) -> "NetworkBuilder":
        self._add(Activation(
            name or self._fresh("sigmoid"),
            inputs=[self._resolve(after)],
            activation=ActivationKind.SIGMOID,
        ))
        return self

    def pool(
        self,
        kernel: int = 2,
        stride: int = 2,
        pad: int = 0,
        mode: PoolMode = PoolMode.MAX,
        name: Optional[str] = None,
        after: Optional[str] = None,
    ) -> "NetworkBuilder":
        self._add(Pool2D(
            name or self._fresh("pool"),
            inputs=[self._resolve(after)],
            mode=mode,
            kernel=kernel,
            stride=stride,
            pad=pad,
        ))
        return self

    def lrn(
        self,
        local_size: int = 5,
        name: Optional[str] = None,
        after: Optional[str] = None,
    ) -> "NetworkBuilder":
        self._add(LRN(
            name or self._fresh("lrn"),
            inputs=[self._resolve(after)],
            local_size=local_size,
        ))
        return self

    def fc(
        self,
        out_features: int,
        name: Optional[str] = None,
        after: Optional[str] = None,
        tied_to: Optional[str] = None,
    ) -> "NetworkBuilder":
        self._add(FullyConnected(
            name or self._fresh("fc"),
            inputs=[self._resolve(after)],
            out_features=out_features,
            tied_to=tied_to,
        ))
        return self

    def slice(
        self,
        begin: int,
        end: int,
        name: Optional[str] = None,
        after: Optional[str] = None,
    ) -> "NetworkBuilder":
        """Select a channel range [begin, end) of the current layer."""
        self._add(Slice(
            name or self._fresh("slice"),
            inputs=[self._resolve(after)],
            begin=begin,
            end=end,
        ))
        return self

    def dropout(
        self,
        rate: float = 0.5,
        name: Optional[str] = None,
        after: Optional[str] = None,
    ) -> "NetworkBuilder":
        self._add(Dropout(
            name or self._fresh("drop"),
            inputs=[self._resolve(after)],
            rate=rate,
        ))
        return self

    def concat(self, branches: Sequence[str], name: Optional[str] = None) -> "NetworkBuilder":
        self._add(Concat(name or self._fresh("concat"), inputs=list(branches)))
        return self

    def add(self, branches: Sequence[str], name: Optional[str] = None) -> "NetworkBuilder":
        """Element-wise sum of branches (residual join)."""
        self._add(EltwiseAdd(name or self._fresh("add"), inputs=list(branches)))
        return self

    def mul(self, branches: Sequence[str], name: Optional[str] = None) -> "NetworkBuilder":
        """Element-wise product of two branches (LSTM/GRU gating)."""
        self._add(EltwiseMul(name or self._fresh("mul"), inputs=list(branches)))
        return self

    def batchnorm(
        self,
        epsilon: float = 1e-5,
        name: Optional[str] = None,
        after: Optional[str] = None,
    ) -> "NetworkBuilder":
        self._add(BatchNorm(
            name or self._fresh("bn"),
            inputs=[self._resolve(after)],
            epsilon=epsilon,
        ))
        return self

    def softmax(self, name: Optional[str] = None, after: Optional[str] = None) -> "NetworkBuilder":
        self._add(Softmax(
            name or self._fresh("softmax"),
            inputs=[self._resolve(after)],
        ))
        return self

    # ------------------------------------------------------------------
    # Composite verbs
    # ------------------------------------------------------------------
    def conv_bn_relu(
        self,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        pad: int = 0,
        name: Optional[str] = None,
        after: Optional[str] = None,
    ) -> "NetworkBuilder":
        """CONV -> BN -> in-place ReLU (the ResNet idiom)."""
        self.conv(out_channels, kernel, stride, pad, name=name, after=after)
        return self.batchnorm().relu()

    def conv_relu(
        self,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        pad: int = 0,
        name: Optional[str] = None,
        after: Optional[str] = None,
    ) -> "NetworkBuilder":
        """CONV immediately followed by in-place ReLU (the common idiom)."""
        self.conv(out_channels, kernel, stride, pad, name=name, after=after)
        return self.relu()

    def tap(self) -> str:
        """Return the current layer name, for starting branches later."""
        if self._cursor is None:
            raise ValueError("builder has no current layer to tap")
        return self._cursor

    def at(self, name: str) -> "NetworkBuilder":
        """Move the cursor onto an existing layer."""
        if not any(l.name == name for l in self._layers):
            raise ValueError(f"no layer named {name!r} in builder")
        self._cursor = name
        return self

    def inception(
        self,
        c1: int,
        c3_reduce: int,
        c3: int,
        c5_reduce: int,
        c5: int,
        pool_proj: int,
        name: Optional[str] = None,
    ) -> "NetworkBuilder":
        """GoogLeNet inception module: four branches joined by a concat.

        Branch widths follow Szegedy et al.'s Table 1 naming: ``#1x1``,
        ``#3x3 reduce``, ``#3x3``, ``#5x5 reduce``, ``#5x5``, ``pool proj``.
        """
        source = self.tap()
        base = name or self._fresh("incep")

        self.conv(c1, kernel=1, name=f"{base}_1x1", after=source)
        b1 = self.relu(name=f"{base}_1x1_relu").tap()

        self.conv(c3_reduce, kernel=1, name=f"{base}_3x3r", after=source).relu(
            name=f"{base}_3x3r_relu")
        self.conv(c3, kernel=3, pad=1, name=f"{base}_3x3")
        b2 = self.relu(name=f"{base}_3x3_relu").tap()

        self.conv(c5_reduce, kernel=1, name=f"{base}_5x5r", after=source).relu(
            name=f"{base}_5x5r_relu")
        self.conv(c5, kernel=5, pad=2, name=f"{base}_5x5")
        b3 = self.relu(name=f"{base}_5x5_relu").tap()

        self.pool(kernel=3, stride=1, pad=1, name=f"{base}_pool", after=source)
        self.conv(pool_proj, kernel=1, name=f"{base}_proj")
        b4 = self.relu(name=f"{base}_proj_relu").tap()

        return self.concat([b1, b2, b3, b4], name=f"{base}_out")

    # ------------------------------------------------------------------
    def build(self) -> Network:
        """Validate and freeze into a :class:`Network`."""
        return Network(self.name, self._layers)

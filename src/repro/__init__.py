"""repro — full reproduction of vDNN (Rhu et al., MICRO 2016).

vDNN is a runtime memory manager that virtualizes DNN training memory
across GPU and CPU: feature maps are offloaded to pinned host memory
during forward propagation (overlapped with compute on a second CUDA
stream) and prefetched back during backward propagation, so networks
whose network-wide footprint far exceeds physical GPU memory become
trainable with little performance loss.

This package provides:

* ``repro.graph`` — DNN dataflow graphs with shape inference, in-place
  aliasing, and consumer refcounts;
* ``repro.zoo`` — every network configuration the paper studies;
* ``repro.hw`` / ``repro.kernels`` / ``repro.sim`` — models of the
  Titan X, cuDNN 4.0's convolution algorithms, and two-stream execution;
* ``repro.alloc`` — the cnmem-style pool allocator;
* ``repro.core`` — the vDNN manager itself (static all/conv policies,
  Figure-10 prefetching, and the dynamic profiling-pass planner);
* ``repro.numerics`` — a numpy training runtime that executes the same
  manager decisions on real buffers, proving bit-identical training;
* ``repro.profiler`` / ``repro.reporting`` — the measurement code behind
  every figure in the paper's evaluation.

Quick start::

    from repro import zoo
    from repro.core import evaluate

    result = evaluate(zoo.build("vgg16", 256), policy="dyn")
    print(result.trainable, result.max_usage_bytes)
"""

from . import (
    alloc,
    core,
    graph,
    hw,
    kernels,
    numerics,
    profiler,
    reporting,
    sim,
    zoo,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "alloc",
    "core",
    "graph",
    "hw",
    "kernels",
    "numerics",
    "profiler",
    "reporting",
    "sim",
    "zoo",
]

"""Render cluster runs as reporting tables (CLI ``repro cluster``)."""

from __future__ import annotations

from typing import Sequence

from ..reporting.tables import format_table, gb_str, mb_str
from ..sched.job import JobState
from .dataparallel import ClusterIterationReport
from .fleet import ClusterResult


def _seconds(value) -> str:
    return f"{value:,.3f} s" if value is not None else "-"


def topology_table(reports: Sequence[ClusterIterationReport]) -> str:
    """One row per topology: the allreduce/offload contention sweep."""
    rows = []
    for report in reports:
        rows.append([
            report.topology,
            f"{report.network}"
            + (f"/{report.batch_size}" if report.batch_size else ""),
            f"x{report.num_gpus}",
            report.rung,
            mb_str(report.allreduce_bytes),
            mb_str(report.offload_bytes),
            _seconds(report.solo_iter_seconds),
            _seconds(report.iter_seconds),
            f"{report.contention_slowdown:.2f}x",
            f"{report.scaling_efficiency * 100:,.1f}%",
        ])
    return format_table(
        ["topology", "network", "gang", "rung", "allreduce/hop",
         "offload/GPU", "solo iter", "cluster iter", "slowdown",
         "scaling eff"],
        rows,
        title="Data-parallel contention: ring allreduce vs. vDNN DMA",
    )


def cluster_job_table(result: ClusterResult) -> str:
    """One row per submitted job: gang, placement, rung, JCT."""
    rows = []
    for record in result.records:
        gpus = result.placements.get(record.job.name)
        slowdown = record.slowdown
        rows.append([
            record.job.name,
            f"{record.job.network}"
            + (f"/{record.job.batch_size}" if record.job.batch_size else ""),
            f"x{getattr(record.job, 'num_gpus', 1)}",
            record.state.value,
            record.rung or "-",
            "gpu[" + ",".join(str(g) for g in gpus) + "]"
            if gpus else "-",
            str(record.evictions) if record.evictions else "-",
            _seconds(record.queueing_delay),
            _seconds(record.completion_time),
            f"{slowdown:.2f}x" if slowdown is not None else "-",
        ])
    return format_table(
        ["job", "network", "gang", "state", "rung", "placement",
         "evict", "queue delay", "JCT", "slowdown"],
        rows,
        title=f"Cluster schedule ({result.placement}) on "
              f"{result.num_gpus}x {result.topology}",
    )


def cluster_fleet_table(result: ClusterResult) -> str:
    """Aggregate fleet metrics for one cluster run."""
    jcts = result.completion_times
    median = jcts[len(jcts) // 2] if jcts else None
    rows = [
        ["jobs finished / rejected",
         f"{len(result.finished)} / {len(result.rejected)}"],
        ["GPUs", f"{result.num_gpus} ({result.topology})"],
        ["per-GPU budget", gb_str(result.budget_bytes)],
        ["makespan", _seconds(result.makespan)],
        ["aggregate throughput",
         f"{result.aggregate_throughput:,.2f} iters/s"],
        ["fleet utilization",
         f"{result.fleet_utilization * 100:,.1f}%"],
        ["fairness (Jain over slowdowns)", f"{result.fairness:.3f}"],
        ["priority preemptions", str(result.preemptions)],
        ["median JCT", _seconds(median)],
        ["max JCT", _seconds(jcts[-1] if jcts else None)],
    ]
    return format_table(["metric", "value"], rows, title="Fleet metrics")


def cluster_report(result: ClusterResult) -> str:
    """Full plain-text report: per-job table + fleet metrics."""
    parts = [cluster_job_table(result), "", cluster_fleet_table(result)]
    failures = [
        f"  {r.job.name}: {r.failure}"
        for r in result.records
        if r.state is JobState.REJECTED and r.failure
    ]
    if failures:
        parts += ["", "Rejections:"] + failures
    return "\n".join(parts)

"""Fleet contention: traffic classes sharing a cluster's links.

The single-GPU scheduler's :class:`~repro.sched.contention.ContentionModel`
splits one PCIe link's bandwidth across co-resident tenants.  A cluster
has *many* links, and two traffic classes compete for them:

* **vDNN DMA** — each worker's offload/prefetch bytes per iteration
  (``RungEval.pcie_bytes``), routed over its ``dma_path``;
* **ring allreduce** — a data-parallel gang's gradient exchange: each
  directed ring hop moves ``2*(n-1)/n * weight_bytes`` per iteration,
  routed over the topology's peer path between consecutive gang members.

Per link, all bytes an entry routes over it are summed (intra-job
contention), and the link's bandwidth is split evenly across the
*entries* that touch it (inter-job contention) — the same fluid
approximation as the single-GPU model, applied per physical link.  An
entry's contended iteration time is then::

    max(solo iteration latency,
        compute demand x tenants sharing its busiest GPU,
        slowest link: dma_time(entry bytes on link) x link users)

On a PCIe-switch tree the gang's allreduce hops and every worker's DMA
meet on the same links, so the max is communication-bound — measurably
slower than n independent single-GPU runs.  NVLink topologies route the
allreduce over dedicated side links and keep a private host link per
GPU, recovering most of that gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..hw.interconnects import ClusterTopology
from ..sched.admission import RungEval


@dataclass(frozen=True)
class PlacedGang:
    """One admitted job's placement: which GPUs, at which ladder rung.

    ``weight_bytes`` is the *replica* weight footprint — the quantity a
    data-parallel gang ring-allreduces every iteration.  Single-GPU
    placements (``len(gpus) == 1``) generate no allreduce traffic.
    """

    name: str
    gpus: Tuple[int, ...]
    rung: RungEval
    weight_bytes: int = 0

    def __post_init__(self) -> None:
        if not self.gpus:
            raise ValueError("a placement needs at least one GPU")
        if len(set(self.gpus)) != len(self.gpus):
            raise ValueError("a gang cannot place two replicas on one GPU")
        if self.weight_bytes < 0:
            raise ValueError("weight_bytes cannot be negative")

    @property
    def ring_hop_bytes(self) -> int:
        """Bytes per directed ring edge per iteration (0 for solo jobs).

        Bandwidth-optimal ring allreduce moves ``2*(n-1)/n * W`` bytes
        through every directed edge of the gang's ring each iteration
        (reduce-scatter + all-gather, (n-1) chunks of ``W/n`` each way).
        """
        n = len(self.gpus)
        if n < 2:
            return 0
        return 2 * (n - 1) * self.weight_bytes // n


class FleetContention:
    """Splits every topology link's bandwidth across its users.

    Attributes:
        topology: the cluster's link/route model.
        timeslice_overhead: extra compute fraction per additional
            co-resident tenant on a GPU (same knob as the single-GPU
            :class:`~repro.sched.contention.ContentionModel`).
    """

    def __init__(self, topology: ClusterTopology,
                 timeslice_overhead: float = 0.0):
        if timeslice_overhead < 0:
            raise ValueError("timeslice_overhead cannot be negative")
        self.topology = topology
        self.timeslice_overhead = timeslice_overhead

    # ------------------------------------------------------------------
    def entry_link_bytes(self, entry: PlacedGang) -> Dict[int, int]:
        """Bytes per iteration ``entry`` routes over each link index.

        vDNN DMA contributes each worker's ``pcie_bytes`` along its host
        DMA path; a multi-GPU gang additionally contributes its ring-hop
        bytes along the peer route of every directed ring edge.
        """
        loads: Dict[int, int] = {}
        if entry.rung.pcie_bytes > 0:
            for gpu in entry.gpus:
                for link in self.topology.dma_path(gpu):
                    loads[link] = loads.get(link, 0) + entry.rung.pcie_bytes
        hop_bytes = entry.ring_hop_bytes
        if hop_bytes > 0:
            n = len(entry.gpus)
            for i in range(n):
                a = entry.gpus[i]
                b = entry.gpus[(i + 1) % n]
                for link in self.topology.route(a, b):
                    loads[link] = loads.get(link, 0) + hop_bytes
        return loads

    def link_loads(self, entries: Sequence[PlacedGang]) -> Dict[int, int]:
        """Aggregate bytes per iteration over each link, all entries."""
        totals: Dict[int, int] = {}
        for entry in entries:
            for link, nbytes in self.entry_link_bytes(entry).items():
                totals[link] = totals.get(link, 0) + nbytes
        return totals

    def iteration_seconds(
        self, entries: Sequence[PlacedGang]
    ) -> List[float]:
        """Contended per-iteration time for each placed entry."""
        per_entry = [self.entry_link_bytes(e) for e in entries]
        users: Dict[int, int] = {}
        tenants: Dict[int, int] = {}
        for entry in entries:
            for gpu in entry.gpus:
                tenants[gpu] = tenants.get(gpu, 0) + 1
        for loads in per_entry:
            for link in loads:
                users[link] = users.get(link, 0) + 1
        contended = []
        for entry, loads in zip(entries, per_entry):
            gang_tenants = max(tenants[gpu] for gpu in entry.gpus)
            overhead = 1.0 + self.timeslice_overhead * max(
                gang_tenants - 1, 0)
            compute = entry.rung.compute_seconds * gang_tenants * overhead
            link_time = 0.0
            for link, nbytes in loads.items():
                hop = self.topology.links[link].dma_time(nbytes)
                link_time = max(link_time, hop * users[link])
            contended.append(
                max(entry.rung.iter_seconds, compute, link_time))
        return contended

    def slowdowns(self, entries: Sequence[PlacedGang]) -> List[float]:
        """Per-entry slowdown factor vs. running alone, uncontended."""
        return [
            contended / entry.rung.iter_seconds
            if entry.rung.iter_seconds > 0 else 1.0
            for entry, contended in zip(
                entries, self.iteration_seconds(entries))
        ]

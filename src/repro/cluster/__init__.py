"""Cluster simulation: N virtualized GPUs behind shared interconnects.

Scales vDNN from one GPU (the paper's scope) to the ROADMAP's fleet: a
:class:`~repro.hw.interconnects.ClusterTopology` wires N GPUs through
shared links, :mod:`~repro.cluster.contention` splits each link between
data-parallel ring-allreduce traffic and the workers' offload/prefetch
DMA, and :mod:`~repro.cluster.fleet` places whole jobs — gangs included
— across the GPUs with bin-pack/spread policies, priority preemption,
and fleet metrics (utilization, Jain fairness, JCT distribution).
"""

from .contention import FleetContention, PlacedGang
from .dataparallel import (
    ClusterIterationReport,
    simulate_cluster_iteration,
    topology_sweep,
    worker_results,
)
from .fleet import (
    ClusterResult,
    FleetScheduler,
    available_placements,
    make_placement,
    schedule_fleet,
    stagger_arrivals,
)
from .job import ClusterJob
from .report import (
    cluster_fleet_table,
    cluster_job_table,
    cluster_report,
    topology_table,
)

__all__ = [
    "ClusterIterationReport",
    "ClusterJob",
    "ClusterResult",
    "FleetContention",
    "FleetScheduler",
    "PlacedGang",
    "available_placements",
    "cluster_fleet_table",
    "cluster_job_table",
    "cluster_report",
    "make_placement",
    "schedule_fleet",
    "simulate_cluster_iteration",
    "stagger_arrivals",
    "topology_sweep",
    "topology_table",
    "worker_results",
]

"""Single data-parallel job on a cluster topology: the acceptance lens.

This module answers the paper-scale question in isolation — before any
fleet scheduling: *how much does ring-allreduce traffic cost a gang of
vDNN workers on a given fabric?*  Each worker is the existing single-GPU
compiled-plan simulation (one ladder rung); the cluster layer adds the
shared-link contention of the gang's gradient exchange on top via
:class:`~repro.cluster.contention.FleetContention`.

``scaling_efficiency`` is the headline number: contended speedup over
``n`` independent single-GPU runs.  On a PCIe-switch tree the allreduce
and every worker's offload/prefetch DMA share the switch uplink, so
efficiency drops well below 1; an NVLink ring routes the allreduce over
dedicated side links and recovers most of it.

``worker_results`` regenerates each worker's schedule with tracing on so
the sanitizer (``repro verify``) can prove every per-worker schedule
race-free and memory-safe — cluster contention stretches the clock, it
never reorders a worker's compiled plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.diagnostics import Report
from ..analysis.verify import verify_result
from ..core.algo_config import AlgoConfig
from ..core.executor import simulate_baseline, simulate_vdnn
from ..core.policy import TransferPolicy
from ..sched.admission import LADDER, RungEval, evaluate_ladder
from ..zoo import build
from ..hw.interconnects import ClusterTopology
from .contention import FleetContention, PlacedGang


@dataclass(frozen=True)
class ClusterIterationReport:
    """One data-parallel job's per-iteration cost on one topology.

    All workers are identical replicas, so one contended iteration time
    covers the gang; ``link_loads`` maps link display names to bytes
    per iteration for the contention breakdown tables.
    """

    network: str
    batch_size: Optional[int]
    num_gpus: int
    topology: str
    rung: str
    weight_bytes: int
    allreduce_bytes: int          # per directed ring hop, per iteration
    offload_bytes: int            # per worker DMA traffic, per iteration
    solo_iter_seconds: float      # one uncontended single-GPU iteration
    iter_seconds: float           # contended, on this topology
    link_loads: Tuple[Tuple[str, int], ...]

    @property
    def contention_slowdown(self) -> float:
        """Contended iteration time over the solo lower bound (>= 1)."""
        if self.solo_iter_seconds <= 0:
            return 1.0
        return self.iter_seconds / self.solo_iter_seconds

    @property
    def scaling_efficiency(self) -> float:
        """Throughput vs. ``num_gpus`` independent single-GPU runs.

        Independent runs process ``n`` batches per solo iteration; the
        gang processes ``n`` batches per contended iteration, so the
        ratio is simply solo over contended time (1.0 = perfect).
        """
        if self.iter_seconds <= 0:
            return 1.0
        return self.solo_iter_seconds / self.iter_seconds


def _select_rung(rungs: List[RungEval], label: str) -> RungEval:
    for rung in rungs:
        if rung.rung == label:
            return rung
    raise ValueError(
        f"unknown ladder rung {label!r}; available: {', '.join(LADDER)}")


def simulate_cluster_iteration(
    network: str,
    batch_size: Optional[int],
    num_gpus: int,
    topology: ClusterTopology,
    rung: str = "all(m)",
) -> ClusterIterationReport:
    """Contended iteration cost of one ``num_gpus``-way gang.

    The replica simulation goes through the content-addressed cache
    (via :func:`~repro.sched.admission.evaluate_ladder`), so sweeping
    one job across several topologies re-simulates nothing.
    """
    if num_gpus < 1:
        raise ValueError("a gang needs at least one GPU")
    if num_gpus > topology.num_gpus:
        raise ValueError(
            f"a {num_gpus}-GPU gang cannot place on a "
            f"{topology.num_gpus}-GPU {topology.name} topology")
    replica = build(network, batch_size)
    chosen = _select_rung(
        evaluate_ladder(replica, topology.system(0)), rung)
    gang = PlacedGang(
        name=f"{network}x{num_gpus}",
        gpus=tuple(range(num_gpus)),
        rung=chosen,
        weight_bytes=replica.total_weight_bytes(),
    )
    model = FleetContention(topology)
    iter_seconds = model.iteration_seconds([gang])[0]
    loads = model.entry_link_bytes(gang)
    return ClusterIterationReport(
        network=network,
        batch_size=batch_size,
        num_gpus=num_gpus,
        topology=topology.name,
        rung=chosen.rung,
        weight_bytes=replica.total_weight_bytes(),
        allreduce_bytes=gang.ring_hop_bytes,
        offload_bytes=chosen.pcie_bytes,
        solo_iter_seconds=chosen.iter_seconds,
        iter_seconds=iter_seconds,
        link_loads=tuple(
            (topology.link_names[link], loads[link])
            for link in sorted(loads)
        ),
    )


def worker_results(
    network: str,
    batch_size: Optional[int],
    num_gpus: int,
    topology: ClusterTopology,
    rung: str = "all(m)",
) -> List[Report]:
    """Sanitize every worker's schedule trace; one Report per worker.

    Each worker re-runs its rung's single-GPU simulation with
    ``verify=True`` against its *own* host link (heterogeneous fabrics
    give workers different local links).  The ``hybrid`` rung pays
    recompute kernels instead of PCIe traffic and its simulator records
    no schedule trace, so — like the verifier's "untrainable" case — it
    is reported as skipped rather than silently passed.
    """
    replica = build(network, batch_size)
    reports: List[Report] = []
    for gpu in range(num_gpus):
        system = topology.system(gpu)
        subject = f"{network} {rung} worker{gpu}/{num_gpus}"
        if rung == "base(p)":
            result = simulate_baseline(
                replica, system,
                AlgoConfig.performance_optimal(replica), verify=True)
        elif rung == "conv(p)":
            result = simulate_vdnn(
                replica, system, TransferPolicy.vdnn_conv(),
                AlgoConfig.performance_optimal(replica), verify=True)
        elif rung == "all(m)":
            result = simulate_vdnn(
                replica, system, TransferPolicy.vdnn_all(),
                AlgoConfig.memory_optimal(replica), verify=True)
        elif rung == "hybrid":
            reports.append(Report(
                subject=f"{subject} (no schedule trace, skipped)"))
            continue
        else:
            raise ValueError(
                f"unknown ladder rung {rung!r}; "
                f"available: {', '.join(LADDER)}")
        reports.append(
            verify_result(result, network=replica, subject=subject))
    return reports


def topology_sweep(
    network: str,
    batch_size: Optional[int],
    num_gpus: int,
    rung: str = "all(m)",
    topologies: Optional[Dict[str, ClusterTopology]] = None,
) -> List[ClusterIterationReport]:
    """The same gang across every topology preset, preset order."""
    from ..hw.interconnects import TOPOLOGY_PRESETS
    if topologies is None:
        topologies = {
            name: factory(num_gpus)
            for name, factory in TOPOLOGY_PRESETS.items()
        }
    return [
        simulate_cluster_iteration(
            network, batch_size, num_gpus, topo, rung)
        for topo in topologies.values()
    ]

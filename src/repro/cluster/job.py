"""Cluster jobs: training requests that may gang-span several GPUs.

A :class:`ClusterJob` extends the scheduler's :class:`~repro.sched.job.Job`
with a gang width.  ``batch_size`` stays the *per-replica* batch (the
convention of the data-parallel literature: "4x VGG-16 (64)" means four
replicas at batch 64 each), so the admission controller's degradation
ladder — keyed by ``(network, batch_size)`` — evaluates each replica
exactly as a single-GPU job and its memoization stays correct unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sched.job import Job
from ..zoo import available


@dataclass(frozen=True)
class ClusterJob(Job):
    """A training request for ``num_gpus`` data-parallel replicas.

    Each replica runs the full network at ``batch_size``; gradients are
    ring-allreduced across the gang every iteration.  ``num_gpus == 1``
    degenerates to an ordinary single-GPU job with no allreduce.
    """

    num_gpus: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_gpus < 1:
            raise ValueError("a job needs at least one GPU")

    @property
    def global_batch(self) -> int:
        """Effective cluster-wide batch per iteration (replicas summed)."""
        if self.batch_size is None:
            raise ValueError(
                "global_batch needs an explicit per-replica batch_size"
            )
        return self.batch_size * self.num_gpus

    @classmethod
    def parse(cls, spec: str, index: int = 0) -> "ClusterJob":
        """Parse a cluster job spec: ``network[:batch[:iters[:gpus]]]``.

        Examples: ``vgg16``, ``vgg16:64``, ``vgg16:64:200``,
        ``vgg16:64:200:4`` (a 4-GPU gang).
        """
        parts = spec.strip().split(":")
        if not parts[0]:
            raise ValueError(f"empty network name in job spec {spec!r}")
        network = parts[0]
        if network not in available():
            raise ValueError(
                f"unknown network {network!r} in job spec {spec!r};"
                f" available: {', '.join(available())}"
            )
        try:
            batch = int(parts[1]) if len(parts) > 1 and parts[1] else None
            iterations = int(parts[2]) if len(parts) > 2 and parts[2] else 100
            gpus = int(parts[3]) if len(parts) > 3 and parts[3] else 1
        except ValueError:
            raise ValueError(
                f"batch, iterations and gpus must be integers in {spec!r}"
                " (network[:batch[:iterations[:gpus]]])"
            ) from None
        return cls(
            name=f"{network}#{index}",
            network=network,
            batch_size=batch,
            iterations=iterations,
            num_gpus=gpus,
        )

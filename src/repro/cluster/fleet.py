"""The fleet scheduler: place N jobs across an M-GPU cluster.

Scales the single-GPU multi-tenant scheduler (:mod:`repro.sched`) to a
topology of virtualized GPUs:

* **Placement.**  Each pending job asks the admission ladder for its
  cheapest workable rung, then a placement policy picks GPUs for it:
  ``bin_pack`` fills the least-free fitting GPUs first (co-locating
  tenants, keeping whole GPUs free for wide gangs), ``spread`` picks
  the most-free GPUs (minimizing per-GPU contention).
* **Gang admission.**  A ``num_gpus > 1`` job is all-or-nothing: every
  replica must get a GPU with the rung's footprint free, or the job
  stays queued.  Replicas of one gang never share a GPU.
* **Preempt-and-migrate.**  A queued job that cannot place may evict
  strictly-lower-priority residents (lowest priority first).  Eviction
  reuses the single-GPU scheduler's ladder semantics: progress is
  preserved and the victim re-queues, typically re-placing on other
  GPUs — a migration — possibly at a cheaper rung.
* **Execution.**  Between events every resident entry progresses at the
  rate :class:`~repro.cluster.contention.FleetContention` assigns it,
  so a gang's ring-allreduce and its neighbours' vDNN offload/prefetch
  DMA contend per physical link of the topology.

The run is a deterministic fluid event simulation: identical inputs
(and an identical arrival seed, see :func:`stagger_arrivals`) replay to
the bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..hw.interconnects import ClusterTopology, make_topology
from ..obs import Instrumentation
from ..sched.admission import AdmissionController, RungEval
from ..sched.job import Job, JobRecord, JobState
from ..sim.timeline import EventKind, Timeline
from .contention import FleetContention, PlacedGang

#: Iteration-count slack absorbing float progress arithmetic (same
#: constant as the single-GPU scheduler).
_EPSILON = 1e-9


def _gang_size(job: Job) -> int:
    """GPUs the job needs: ClusterJob.num_gpus, 1 for a plain Job."""
    return getattr(job, "num_gpus", 1)


def stagger_arrivals(
    jobs: Sequence[Job], rate: float, seed: int = 0
) -> List[Job]:
    """Poisson arrivals: exponential inter-arrival gaps at ``rate``/s.

    Deterministic per seed (``random.Random(seed)``), so a cluster run
    replays exactly.  ``rate <= 0`` returns the jobs unchanged (all
    arrive at their declared ``submit_time``).
    """
    if rate <= 0:
        return list(jobs)
    rng = random.Random(seed)
    clock = 0.0
    staggered = []
    for job in jobs:
        clock += rng.expovariate(rate)
        staggered.append(replace(job, submit_time=clock))
    return staggered


# ----------------------------------------------------------------------
# Placement policies
# ----------------------------------------------------------------------
class PlacementPolicy:
    """Orders candidate GPUs for one placement decision."""

    name = "placement"

    def choose(
        self, free_bytes: Dict[int, int], needed: int, footprint: int
    ) -> Optional[Tuple[int, ...]]:
        """GPUs for a ``needed``-wide gang, or None if it cannot place.

        Chosen GPUs are returned in ascending index order so ring-edge
        peers sit close in the topology (same PCIe switch where
        possible).
        """
        fits = [gpu for gpu, free in free_bytes.items()
                if free >= footprint]
        if len(fits) < needed:
            return None
        ranked = sorted(fits, key=lambda gpu: self._key(free_bytes, gpu))
        return tuple(sorted(ranked[:needed]))

    def _key(self, free_bytes: Dict[int, int], gpu: int):
        raise NotImplementedError


class BinPackPlacement(PlacementPolicy):
    """Least-free fitting GPUs first: consolidate, keep GPUs whole."""

    name = "bin_pack"

    def _key(self, free_bytes: Dict[int, int], gpu: int):
        return (free_bytes[gpu], gpu)


class SpreadPlacement(PlacementPolicy):
    """Most-free GPUs first: minimize per-GPU tenant contention."""

    name = "spread"

    def _key(self, free_bytes: Dict[int, int], gpu: int):
        return (-free_bytes[gpu], gpu)


_PLACEMENTS = {
    BinPackPlacement.name: BinPackPlacement,
    SpreadPlacement.name: SpreadPlacement,
}


def make_placement(name: str) -> PlacementPolicy:
    """Instantiate a placement policy by registry key."""
    key = name.strip().lower()
    if key not in _PLACEMENTS:
        raise KeyError(
            f"unknown placement policy {name!r}; "
            f"available: {', '.join(sorted(_PLACEMENTS))}")
    return _PLACEMENTS[key]()


def available_placements() -> List[str]:
    return sorted(_PLACEMENTS)


# ----------------------------------------------------------------------
@dataclass
class _FleetResident:
    """One placed job holding bytes on its gang's GPUs."""

    record: JobRecord
    rung: RungEval
    gpus: Tuple[int, ...]
    weight_bytes: int
    remaining_iterations: float

    def as_gang(self) -> PlacedGang:
        return PlacedGang(
            name=self.record.job.name,
            gpus=self.gpus,
            rung=self.rung,
            weight_bytes=self.weight_bytes if len(self.gpus) > 1 else 0,
        )


@dataclass
class ClusterResult:
    """Everything one fleet-scheduler run produces."""

    topology: str
    num_gpus: int
    placement: str
    budget_bytes: int             # per-GPU budget
    records: List[JobRecord]
    timeline: Timeline
    #: Final placement per job name (the gang's GPU indices); a migrated
    #: job shows where it last ran.
    placements: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    #: Priority preemptions performed (evict-and-migrate events).
    preemptions: int = 0
    #: Per-job GPU-seconds actually occupied: residency x gang width.
    gpu_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def finished(self) -> List[JobRecord]:
        return [r for r in self.records if r.state is JobState.FINISHED]

    @property
    def rejected(self) -> List[JobRecord]:
        return [r for r in self.records if r.state is JobState.REJECTED]

    @property
    def makespan(self) -> float:
        """First submit to last completion across finished jobs."""
        done = self.finished
        if not done:
            return 0.0
        start = min(r.job.submit_time for r in done)
        return max(r.finish_time for r in done) - start

    @property
    def aggregate_throughput(self) -> float:
        """Completed training iterations per second across the fleet."""
        span = self.makespan
        iters = sum(r.job.iterations for r in self.finished)
        return iters / span if span > 0 else 0.0

    @property
    def fleet_utilization(self) -> float:
        """Occupied GPU-seconds over available GPU-seconds (0..1)."""
        span = self.makespan
        if span <= 0 or self.num_gpus < 1:
            return 0.0
        busy = sum(self.gpu_seconds.values())
        return min(busy / (span * self.num_gpus), 1.0)

    @property
    def fairness(self) -> float:
        """Jain's index over finished jobs' slowdowns (1.0 = equal).

        ``(sum x)^2 / (n * sum x^2)`` ranges from ``1/n`` (one job bears
        all the contention) to 1.0 (perfectly even slowdowns).
        """
        slowdowns = [r.slowdown for r in self.finished
                     if r.slowdown is not None]
        if not slowdowns:
            return 1.0
        total = sum(slowdowns)
        squares = sum(s * s for s in slowdowns)
        if squares <= 0:
            return 1.0
        return (total * total) / (len(slowdowns) * squares)

    @property
    def completion_times(self) -> List[float]:
        """Finished jobs' JCTs — the cluster-wide JCT distribution."""
        return sorted(
            r.completion_time for r in self.finished
            if r.completion_time is not None
        )


class FleetScheduler:
    """Places and runs jobs across every GPU of a cluster topology."""

    def __init__(
        self,
        topology: Union[str, ClusterTopology] = "pcie-switch",
        num_gpus: int = 4,
        placement: Union[str, PlacementPolicy] = "bin_pack",
        budget_bytes: Optional[int] = None,
        controller: Optional[AdmissionController] = None,
        contention: Optional[FleetContention] = None,
        preemption: bool = True,
        obs: Optional[Instrumentation] = None,
    ):
        if isinstance(topology, str):
            topology = make_topology(topology, num_gpus)
        self.topology = topology
        self.placement = make_placement(placement) \
            if isinstance(placement, str) else placement
        # One admission system for the whole fleet: the ladder varies
        # only with the *host link*, and every preset wires identical
        # host links, so a single memoized controller covers all GPUs.
        system = topology.system(0)
        if budget_bytes is None:
            budget_bytes = system.gpu.memory_bytes
        if budget_bytes <= 0:
            raise ValueError(
                f"budget_bytes must be positive, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self.controller = controller or AdmissionController(system)
        self.contention = contention or FleetContention(topology)
        self.preemption = preemption
        self.obs = obs
        self.timeline = Timeline()
        self.records: List[JobRecord] = []
        self.free_bytes: Dict[int, int] = {
            gpu: budget_bytes for gpu in range(topology.num_gpus)
        }
        self.placements: Dict[str, Tuple[int, ...]] = {}
        self.gpu_seconds: Dict[str, float] = {}
        self.preemptions = 0

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> JobRecord:
        """Enqueue one job; returns its lifecycle record."""
        if any(r.job.name == job.name for r in self.records):
            raise ValueError(f"duplicate job name {job.name!r}")
        record = JobRecord(job=job)
        self.records.append(record)
        return record

    def submit_all(self, jobs: Sequence[Job]) -> List[JobRecord]:
        return [self.submit(job) for job in jobs]

    # ------------------------------------------------------------------
    def _reject(self, record: JobRecord, clock: float,
                reason: str) -> None:
        record.state = JobState.REJECTED
        record.failure = reason
        record.finish_time = clock
        if self.obs is not None:
            self.obs.job_event("rejected")

    def _admit(self, record: JobRecord, rung: RungEval,
               gpus: Tuple[int, ...], clock: float,
               resident: List[_FleetResident]) -> None:
        for gpu in gpus:
            self.free_bytes[gpu] -= rung.footprint_bytes
        record.state = JobState.RUNNING
        record.rung = rung.rung
        record.footprint_bytes = rung.footprint_bytes * len(gpus)
        record.solo_iter_seconds = rung.iter_seconds
        record.pcie_bytes_per_iter = rung.pcie_bytes * len(gpus)
        record.admit_time = clock
        ready_since = record.requeued_at if record.requeued_at is not None \
            else record.job.submit_time
        if clock > ready_since:
            self.timeline.record(
                f"job:{record.job.name}", EventKind.STALL,
                "requeued" if record.requeued_at is not None else "queued",
                ready_since, clock,
            )
        weight_bytes = 0
        if len(gpus) > 1:
            weight_bytes = record.job.build_network().total_weight_bytes()
        resident.append(_FleetResident(
            record=record,
            rung=rung,
            gpus=gpus,
            weight_bytes=weight_bytes,
            remaining_iterations=float(record.job.iterations)
            - record.iterations_done,
        ))
        self.placements[record.job.name] = gpus
        if self.obs is not None:
            self.obs.job_admitted(max(clock - ready_since, 0.0), rung.rung)

    def _place(self, job: Job) -> Optional[Tuple[RungEval, Tuple[int, ...]]]:
        """Cheapest rung + GPUs the placement policy grants it now."""
        return self._place_on(job, self.free_bytes)

    def _place_on(
        self, job: Job, free_bytes: Dict[int, int]
    ) -> Optional[Tuple[RungEval, Tuple[int, ...]]]:
        """Placement decision against an arbitrary free-bytes map."""
        needed = _gang_size(job)
        if needed > self.topology.num_gpus:
            return None
        for rung in self.controller.ladder(job):
            if rung.footprint_bytes > self.budget_bytes:
                continue
            gpus = self.placement.choose(
                free_bytes, needed, rung.footprint_bytes)
            if gpus is not None:
                return rung, gpus
        return None

    def _min_footprint_fits_empty(self, job: Job) -> bool:
        return _gang_size(job) <= self.topology.num_gpus and \
            self.controller.min_footprint(job) <= self.budget_bytes

    def _evict(self, entry: _FleetResident, clock: float,
               pending: List[JobRecord], resident: List[_FleetResident],
               reason: str) -> None:
        """Evict a resident entry, preserving progress for readmission."""
        resident.remove(entry)
        for gpu in entry.gpus:
            self.free_bytes[gpu] += entry.rung.footprint_bytes
        record = entry.record
        record.iterations_done = float(record.job.iterations) \
            - max(entry.remaining_iterations, 0.0)
        record.state = JobState.PENDING
        record.evictions += 1
        record.requeued_at = clock
        record.rung = None
        record.footprint_bytes = 0
        pending.append(record)
        self.timeline.record(
            f"job:{record.job.name}", EventKind.FAULT, reason, clock, clock,
        )
        if self.obs is not None:
            self.obs.job_event("evicted")

    def _try_preempt(self, record: JobRecord, clock: float,
                     pending: List[JobRecord],
                     resident: List[_FleetResident]) -> bool:
        """Evict lower-priority residents until ``record`` can place.

        Victims go lowest priority first (ties: least progress, so the
        cheapest work is redone).  The eviction set is planned against a
        *hypothetical* free map first and only committed if it actually
        makes the placement possible — evicting without a guaranteed
        placement would thrash victims in and out of residency forever.
        """
        victims = sorted(
            (e for e in resident
             if e.record.job.priority < record.job.priority),
            key=lambda e: (e.record.job.priority,
                           float(e.record.job.iterations)
                           - e.remaining_iterations),
        )
        hypothetical = dict(self.free_bytes)
        chosen: List[_FleetResident] = []
        for victim in victims:
            if self._place_on(record.job, hypothetical) is not None:
                break
            for gpu in victim.gpus:
                hypothetical[gpu] += victim.rung.footprint_bytes
            chosen.append(victim)
        if self._place_on(record.job, hypothetical) is None:
            return False
        for victim in chosen:
            self._evict(victim, clock, pending, resident,
                        reason="preempted")
        self.preemptions += len(chosen)
        return True

    def _try_admit(self, clock: float, pending: List[JobRecord],
                   resident: List[_FleetResident]) -> None:
        """Admit every job placeable at the current instant.

        Queue order is priority-desc then submit-order (FIFO within a
        priority class); after each admission the free map changed, so
        the scan restarts.
        """
        while True:
            queue = sorted(
                (r for r in pending if r.job.submit_time <= clock),
                key=lambda r: (-r.job.priority,
                               r.job.submit_time,
                               r.job.name),
            )
            if not queue:
                return
            admitted = False
            for record in queue:
                placed = self._place(record.job)
                if placed is None:
                    if not self._min_footprint_fits_empty(record.job):
                        self._reject(
                            record, clock,
                            f"needs {_gang_size(record.job)} GPU(s) with "
                            f"{self.controller.min_footprint(record.job)}"
                            f" bytes free; cluster has "
                            f"{self.topology.num_gpus} x "
                            f"{self.budget_bytes} bytes")
                        pending.remove(record)
                        admitted = True
                        break
                    if self.preemption and self._try_preempt(
                            record, clock, pending, resident):
                        placed = self._place(record.job)
                    else:
                        continue
                rung, gpus = placed
                self._admit(record, rung, gpus, clock, resident)
                pending.remove(record)
                admitted = True
                break
            if not admitted:
                return

    # ------------------------------------------------------------------
    def run(self) -> ClusterResult:
        """Run the fleet to completion and return the cluster schedule."""
        pending = [r for r in self.records if r.state is JobState.PENDING]
        resident: List[_FleetResident] = []
        clock = min((r.job.submit_time for r in pending), default=0.0)

        last_snapshot = None
        while pending or resident:
            snapshot = (
                clock, len(pending),
                tuple((id(r), r.remaining_iterations) for r in resident),
            )
            if snapshot == last_snapshot:
                raise RuntimeError(
                    f"fleet scheduler made no progress at t={clock} with "
                    f"{len(resident)} resident / {len(pending)} pending "
                    f"job(s); aborting instead of spinning"
                )
            last_snapshot = snapshot

            self._try_admit(clock, pending, resident)
            next_arrival = min(
                (r.job.submit_time for r in pending
                 if r.job.submit_time > clock),
                default=None,
            )

            if not resident:
                if next_arrival is not None:
                    clock = max(clock, next_arrival)
                    continue
                # Nothing running, nothing admissible, nothing arriving.
                for record in list(pending):
                    self._reject(record, clock,
                                 "unplaceable on an idle cluster")
                    pending.remove(record)
                break

            rates = self.contention.iteration_seconds(
                [r.as_gang() for r in resident]
            )
            for entry, iter_seconds in zip(resident, rates):
                if iter_seconds <= 0:
                    entry.remaining_iterations = 0.0
            finish_times = [
                clock + r.remaining_iterations * iter_seconds
                for r, iter_seconds in zip(resident, rates)
            ]
            horizon = min(finish_times)
            if next_arrival is not None:
                horizon = min(horizon, next_arrival)

            tenants = len(resident)
            for entry, iter_seconds in zip(resident, rates):
                if horizon > clock and iter_seconds > 0:
                    entry.remaining_iterations -= \
                        (horizon - clock) / iter_seconds
                    gpus = ",".join(str(g) for g in entry.gpus)
                    self.timeline.record(
                        f"job:{entry.record.job.name}", EventKind.RUN,
                        f"{entry.rung.rung} @gpu[{gpus}] x{tenants}",
                        clock, horizon,
                        nbytes=entry.rung.footprint_bytes,
                    )
                    entry.record.residency.append((clock, horizon, tenants))
                    name = entry.record.job.name
                    self.gpu_seconds[name] = self.gpu_seconds.get(name, 0.0) \
                        + (horizon - clock) * len(entry.gpus)
            clock = horizon

            for entry, finish in [
                (e, f) for e, f in zip(resident, finish_times)
                if e.remaining_iterations <= _EPSILON or f <= clock
            ]:
                resident.remove(entry)
                for gpu in entry.gpus:
                    self.free_bytes[gpu] += entry.rung.footprint_bytes
                entry.record.state = JobState.FINISHED
                entry.record.finish_time = clock
                entry.record.iterations_done = float(
                    entry.record.job.iterations
                )
                if not entry.record.residency:
                    entry.record.residency.append((clock, clock, tenants))
                if self.obs is not None:
                    self.obs.job_finished(
                        max(clock - entry.record.job.submit_time, 0.0))

        result = ClusterResult(
            topology=self.topology.name,
            num_gpus=self.topology.num_gpus,
            placement=self.placement.name,
            budget_bytes=self.budget_bytes,
            records=list(self.records),
            timeline=self.timeline,
            placements=dict(self.placements),
            preemptions=self.preemptions,
            gpu_seconds=dict(self.gpu_seconds),
        )
        if self.obs is not None:
            self.obs.sched_makespan(result.makespan)
            self.obs.fleet_summary(
                result.fleet_utilization, result.fairness,
                self.topology.num_gpus)
            for record in result.records:
                if record.finish_time is None:
                    continue
                self.obs.span(
                    record.job.name, "jobs",
                    record.job.submit_time,
                    max(record.finish_time, record.job.submit_time),
                    category="job", state=record.state.name.lower(),
                    rung=record.rung or "", evictions=record.evictions)
        return result


def schedule_fleet(
    jobs: Sequence[Job],
    topology: Union[str, ClusterTopology] = "pcie-switch",
    num_gpus: int = 4,
    placement: Union[str, PlacementPolicy] = "bin_pack",
    budget_bytes: Optional[int] = None,
    arrival_rate: float = 0.0,
    seed: int = 0,
    preemption: bool = True,
    obs: Optional[Instrumentation] = None,
) -> ClusterResult:
    """Convenience: stagger, submit, and run ``jobs`` on a fresh fleet."""
    scheduler = FleetScheduler(
        topology=topology, num_gpus=num_gpus, placement=placement,
        budget_bytes=budget_bytes, preemption=preemption, obs=obs,
    )
    scheduler.submit_all(stagger_arrivals(jobs, arrival_rate, seed))
    return scheduler.run()

"""SLO reporting for serving runs: quantiles, attainment, goodput.

The report reads the per-model latency *histograms* the server's
instrumentation accumulated — p50/p95/p99 via
:meth:`~repro.obs.Histogram.quantile`, SLO attainment via
:meth:`~repro.obs.Histogram.fraction_below` — rather than re-deriving
them from the raw records, so the numbers shown are exactly the numbers
exported (Prometheus text, metrics JSON) and carry the documented
bucket-interpolation bias rather than a second, subtly different
estimate.

Two renderings: :func:`serve_report` (fixed-width operator table) and
:func:`serve_json` (stable, versioned machine schema — sorted keys,
rounded floats, bit-identical per (scenario, seed)).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..obs.metrics import Histogram
from ..reporting.tables import format_table, gb_str, mb_str, ms_str, pct_str
from .server import ServeResult

#: ``serve_json`` schema version; bump on any breaking shape change.
SERVE_SCHEMA = 1

#: Report quantiles, in display order.
QUANTILES = (0.5, 0.95, 0.99)


def _latency_histogram(result: ServeResult,
                       model: str) -> Optional[Histogram]:
    for metric in result.obs.registry.metrics():
        if (metric.name == "repro_serve_latency_seconds"
                and isinstance(metric, Histogram)
                and dict(metric.labels).get("model") == model):
            return metric
    return None


def model_stats(result: ServeResult, model: str) -> Dict[str, float]:
    """Per-model serving statistics, all derived from obs metrics."""
    records = [r for r in result.records if r.model == model]
    completed = sum(1 for r in records if r.outcome == "completed")
    shed = sum(1 for r in records if r.outcome == "shed")
    rejected = sum(1 for r in records if r.outcome == "rejected")
    stats: Dict[str, float] = {
        "requests": float(len(records)),
        "completed": float(completed),
        "shed": float(shed),
        "rejected": float(rejected),
        "slo_attainment": 0.0,
    }
    for q in QUANTILES:
        stats[f"p{int(q * 100)}"] = 0.0
    histogram = _latency_histogram(result, model)
    if histogram is not None and histogram.count:
        for q in QUANTILES:
            stats[f"p{int(q * 100)}"] = histogram.quantile(q)
        stats["slo_attainment"] = histogram.fraction_below(
            result.config.slo_seconds)
    return stats


def fleet_stats(result: ServeResult) -> Dict[str, float]:
    """Whole-run statistics across every model."""
    total = len(result.records)
    completed = result.completed
    makespan = result.makespan
    attained = 0.0
    for spec in result.config.models:
        stats = model_stats(result, spec.name)
        attained += stats["slo_attainment"] * stats["completed"]
    return {
        "requests": float(total),
        "completed": float(completed),
        "shed": float(result.shed),
        "rejected": float(result.rejected),
        "slo_attainment": attained / completed if completed else 0.0,
        # Goodput: SLO-attained completions per second of wall time —
        # the serving number that actually matters under overload.
        "goodput_rps": attained / makespan if makespan > 0 else 0.0,
        "throughput_rps": completed / makespan if makespan > 0 else 0.0,
        "makespan_seconds": makespan,
        "cold_starts": float(result.cold_starts),
        "evictions": float(result.evictions),
        "window_shrinks": float(result.window_shrinks),
        "pool_peak_bytes": float(result.pool_peak_bytes),
    }


def serve_report(result: ServeResult) -> str:
    """Operator-facing fixed-width report of one serving run."""
    rows: List[List[str]] = []
    for spec in result.config.models:
        stats = model_stats(result, spec.name)
        plan = result.plans[spec.name]
        rows.append([
            spec.name,
            plan.residency,
            mb_str(plan.footprint_bytes),
            f"{int(stats['completed'])}/{int(stats['requests'])}",
            ms_str(stats["p50"]),
            ms_str(stats["p95"]),
            ms_str(stats["p99"]),
            pct_str(stats["slo_attainment"]),
        ])
    fleet = fleet_stats(result)
    table = format_table(
        ["model", "residency", "footprint", "done/total",
         "p50", "p95", "p99", "SLO"],
        rows,
        title=(f"serving: {result.config.arrivals.label} | "
               f"budget {gb_str(result.config.budget_bytes)} | "
               f"SLO {ms_str(result.config.slo_seconds)}"),
    )
    lines = [table, ""]
    lines.append(
        f"fleet: {int(fleet['completed'])}/{int(fleet['requests'])} done "
        f"({int(fleet['shed'])} shed, {int(fleet['rejected'])} rejected), "
        f"SLO attainment {pct_str(fleet['slo_attainment'])}, "
        f"goodput {fleet['goodput_rps']:,.1f} req/s "
        f"(throughput {fleet['throughput_rps']:,.1f})")
    lines.append(
        f"memory: pool peak {mb_str(fleet['pool_peak_bytes'])} of "
        f"{gb_str(result.config.budget_bytes)}; "
        f"{int(fleet['cold_starts'])} cold starts, "
        f"{int(fleet['evictions'])} evictions, "
        f"{int(fleet['window_shrinks'])} window shrinks")
    if result.unservable:
        lines.append(
            "unservable (footprint exceeds budget even alone): "
            + ", ".join(result.unservable))
    return "\n".join(lines)


def _round(value: float) -> float:
    return round(value, 9)


def serve_json(result: ServeResult) -> dict:
    """Versioned machine-readable report (stable shape, sorted keys
    when dumped with ``sort_keys=True``, floats rounded so the same
    scenario + seed is byte-identical across runs)."""
    models = {}
    for spec in result.config.models:
        stats = model_stats(result, spec.name)
        plan = result.plans[spec.name]
        models[spec.name] = {
            "priority": spec.priority,
            "residency": plan.residency,
            "footprint_bytes": plan.footprint_bytes,
            "window_bytes": plan.window_bytes,
            "persistent_bytes": plan.persistent_bytes,
            "requests": int(stats["requests"]),
            "completed": int(stats["completed"]),
            "shed": int(stats["shed"]),
            "rejected": int(stats["rejected"]),
            "latency_seconds": {
                f"p{int(q * 100)}": _round(stats[f"p{int(q * 100)}"])
                for q in QUANTILES
            },
            "slo_attainment": _round(stats["slo_attainment"]),
        }
    fleet = fleet_stats(result)
    return {
        "schema": SERVE_SCHEMA,
        "scenario": {
            "arrivals": result.config.arrivals.label,
            "budget_bytes": result.config.budget_bytes,
            "slo_seconds": _round(result.config.slo_seconds),
            "residency": result.config.residency,
            "requests": result.config.requests,
            "fault_seed": result.config.fault_seed,
            "faults": result.config.faults.label,
        },
        "models": models,
        "fleet": {
            "completed": int(fleet["completed"]),
            "shed": int(fleet["shed"]),
            "rejected": int(fleet["rejected"]),
            "slo_attainment": _round(fleet["slo_attainment"]),
            "goodput_rps": _round(fleet["goodput_rps"]),
            "throughput_rps": _round(fleet["throughput_rps"]),
            "makespan_seconds": _round(fleet["makespan_seconds"]),
            "cold_starts": int(fleet["cold_starts"]),
            "evictions": int(fleet["evictions"]),
            "window_shrinks": int(fleet["window_shrinks"]),
            "pool_peak_bytes": int(fleet["pool_peak_bytes"]),
            "unservable": list(result.unservable),
        },
    }

"""Online inference serving: demand layering on one virtualized GPU.

vDNN virtualizes training's feature maps; this package virtualizes
serving's *weights*.  An open-loop request stream
(:mod:`~repro.serve.arrivals`) drains through a single modeled GPU
whose memory is one shared pool; each model serves under a residency
policy (:mod:`~repro.serve.layering`) — classic ``resident``,
``layered`` demand streaming through a sliding PCIe window, or a
``pinned`` hybrid — while the event loop
(:mod:`~repro.serve.server`) multiplexes installs, evictions and an
overload ladder (shrink window, shed low-priority, reject).  Reports
(:mod:`~repro.serve.report`) read p50/p95/p99 and SLO attainment
straight from the observability histograms.  See docs/serving.md.
"""

from .arrivals import (
    ARRIVAL_KINDS,
    ArrivalSpec,
    ArrivalSpecError,
    ModelSpec,
    Request,
    generate_requests,
    parse_models,
)
from .layering import (
    RESIDENCY_POLICIES,
    ServePlanError,
    ServicePlan,
    activation_peak_bytes,
    plan_service,
    shrink_window,
)
from .report import SERVE_SCHEMA, fleet_stats, model_stats, serve_json, \
    serve_report
from .server import (
    RESIDENCY_CHOICES,
    RequestRecord,
    ServeConfig,
    ServeConfigError,
    ServeResult,
    simulate_serving,
)

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalSpec",
    "ArrivalSpecError",
    "ModelSpec",
    "RESIDENCY_CHOICES",
    "RESIDENCY_POLICIES",
    "Request",
    "RequestRecord",
    "SERVE_SCHEMA",
    "ServeConfig",
    "ServeConfigError",
    "ServePlanError",
    "ServeResult",
    "ServicePlan",
    "activation_peak_bytes",
    "fleet_stats",
    "generate_requests",
    "model_stats",
    "parse_models",
    "plan_service",
    "serve_json",
    "serve_report",
    "shrink_window",
    "simulate_serving",
]

"""Demand-layering service planner: weights streamed against compute.

For training, vDNN virtualizes *feature maps*; for inference there is no
backward pass, so the big persistent tenant is the *weights*.  Demand
layering (the serving analogue of vDNN's prefetch pipeline) streams each
layer's weights over PCIe into a small sliding window just ahead of that
layer's kernel, overlapping DMA with the compute of earlier layers.  A
model whose weights dwarf the device budget can then serve from a
window a fraction of that size — paying only where the PCIe roofline
(DMA time per layer) exceeds the compute roofline.

Three residency policies, per model:

* ``resident`` — classic serving: all weights stay on-device
  (persistent footprint = total weights), cold start pays the full
  upload once, steady-state requests never touch PCIe.
* ``layered`` — nothing persistent; every request streams all weights
  through a window of ``window_bytes``, pipelined layer-by-layer
  against compute.  Footprint shrinks to window + activation peak;
  latency inflates by whatever DMA the pipeline cannot hide.
* ``pinned`` — hybrid: the largest layers (greedy, up to
  ``pinned_bytes``) stay resident, the rest stream.  Pins the layers
  with the worst DMA-to-compute ratios first, since streaming cost
  scales with bytes while compute does not.

The planner is analytic and deterministic: it runs the same pipeline
recurrence as a discrete-event schedule would, layer by layer in the
forward schedule, and returns a :class:`ServicePlan` the server replays
per request.  Shrinking the window (the first rung of the overload
ladder) is just re-planning with a smaller ``window_bytes``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Tuple

from ..core.algo_config import AlgoConfig
from ..core.inference import _validate_inference_batch, weight_load_bytes
from ..core.liveness import LivenessAnalysis
from ..graph.layer import LayerKind
from ..graph.network import Network
from ..hw.config import SystemConfig
from ..kernels.latency import LatencyModel

#: Residency policies accepted by :func:`plan_service`.
RESIDENCY_POLICIES = ("resident", "layered", "pinned")


class ServePlanError(ValueError):
    """Raised when a service plan cannot be built as requested."""


@dataclass(frozen=True)
class ServicePlan:
    """Precomputed per-request cost model for one (model, residency).

    Attributes:
        model: network name the plan describes.
        residency: one of :data:`RESIDENCY_POLICIES`.
        weight_bytes: total model weights.
        persistent_bytes: weights that stay on-device between requests
            (all of them for ``resident``, the pinned set for
            ``pinned``, zero for ``layered``).
        streamed_bytes: weights each request streams over PCIe.
        window_bytes: effective sliding-window size.  May exceed the
            requested window: it is clamped *up* to the largest single
            streamed layer so the pipeline recurrence is always
            feasible (documented rather than failed, since a window
            that cannot hold one layer can never make progress).
        activation_bytes: peak transient activations + workspace of one
            forward pass (layer-wise release, Figure 7 shape).
        footprint_bytes: persistent + window + activations — what the
            pool must actually hold to serve one request.
        cold_start_seconds: one-time install cost (DMA of persistent
            weights when the model is brought on-device).
        compute_seconds: sum of per-layer kernel times.
        dma_seconds: sum of per-layer DMA times for streamed weights.
        stall_seconds: compute idle the pipeline could not hide.
        service_seconds: end-to-end warm latency of one request
            (= compute + stall; equals compute when nothing streams).
        pinned_layers: indices pinned on-device (``pinned`` only).
    """

    model: str
    residency: str
    weight_bytes: int
    persistent_bytes: int
    streamed_bytes: int
    window_bytes: int
    activation_bytes: int
    cold_start_seconds: float
    compute_seconds: float
    dma_seconds: float
    stall_seconds: float
    service_seconds: float
    pinned_layers: Tuple[int, ...] = ()

    @property
    def footprint_bytes(self) -> int:
        """Device bytes needed to hold the model and serve one request."""
        return self.persistent_bytes + self.window_bytes + self.activation_bytes

    @property
    def hidden_fraction(self) -> float:
        """Fraction of streamed DMA time hidden behind compute."""
        if self.dma_seconds <= 0:
            return 1.0
        return max(0.0, 1.0 - self.stall_seconds / self.dma_seconds)


def activation_peak_bytes(network: Network, algos: AlgoConfig) -> int:
    """Peak transient bytes of one layer-wise-release forward pass.

    Mirrors :func:`repro.core.inference.simulate_inference`'s allocation
    shape — Y allocated at its producer, workspace live only during the
    kernel, X freed at its last consumer — without running the latency
    model.  This is the activation term of a serving footprint.
    """
    liveness = LivenessAnalysis(network)
    live = 0
    peak = 0
    held: Dict[int, int] = {}
    for index in network.forward_schedule():
        node = network[index]
        if not node.in_place:
            storage = liveness.storage_of(index)
            held[storage.owner] = storage.nbytes
            live += storage.nbytes
        workspace = 0
        if node.kind is not LayerKind.INPUT:
            workspace = algos.workspace_bytes(node)
        peak = max(peak, live + workspace)
        for storage in liveness.input_storages(index):
            if storage.forward_release_at == index:
                live -= held.pop(storage.owner, storage.nbytes)
    return peak


def _layer_compute_seconds(
    network: Network, system: SystemConfig, algos: AlgoConfig
) -> Dict[int, float]:
    """Per-layer forward kernel seconds in schedule order."""
    latency = LatencyModel(system.gpu)
    out: Dict[int, float] = {}
    for index in network.forward_schedule():
        node = network[index]
        if node.kind is LayerKind.INPUT:
            out[index] = 0.0
        else:
            out[index] = latency.forward(network, node,
                                         algos.profile(node)).seconds
    return out


def _pick_pinned(
    weights: Dict[int, int], pinned_bytes: int
) -> Tuple[int, ...]:
    """Greedy pin: largest weights first (ties: lower layer index)."""
    order = sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
    pinned: List[int] = []
    budget = pinned_bytes
    for index, nbytes in order:
        if nbytes <= budget:
            pinned.append(index)
            budget -= nbytes
    return tuple(sorted(pinned))


def plan_service(
    network: Network,
    system: SystemConfig,
    algos: AlgoConfig,
    residency: str = "resident",
    window_bytes: int = 64 * (1 << 20),
    pinned_bytes: int = 0,
) -> ServicePlan:
    """Build the :class:`ServicePlan` for one model under one policy.

    The ``layered``/``pinned`` pipeline is a two-resource recurrence
    over the forward schedule: one serial DMA engine issuing loads in
    layer order (a load may start only when the window has room, which
    may mean waiting for an earlier layer's compute to finish and
    release its weights) and one serial compute engine (a kernel may
    start only when its weights have landed).  Stall is the compute
    idle this pipeline fails to hide.
    """
    if residency not in RESIDENCY_POLICIES:
        raise ServePlanError(
            f"unknown residency {residency!r}; "
            f"policies: {', '.join(RESIDENCY_POLICIES)}")
    if window_bytes <= 0 and residency != "resident":
        raise ServePlanError(
            f"window_bytes must be positive, got {window_bytes}")
    _validate_inference_batch(network)

    weights = weight_load_bytes(network)
    total_weights = sum(weights.values())
    compute = _layer_compute_seconds(network, system, algos)
    compute_total = sum(compute.values())
    activations = activation_peak_bytes(network, algos)
    dma = system.pcie.dma_time

    if residency == "pinned":
        pinned = _pick_pinned(weights, pinned_bytes)
    elif residency == "resident":
        pinned = tuple(sorted(weights))
    else:
        pinned = ()
    pinned_set = frozenset(pinned)
    persistent = sum(weights[i] for i in pinned)
    streamed = {i: w for i, w in weights.items() if i not in pinned_set}
    streamed_total = sum(streamed.values())
    cold_start = sum(dma(weights[i]) for i in pinned)

    if not streamed:
        # Pure resident: requests never touch PCIe, window unused.
        return ServicePlan(
            model=network.name,
            residency=residency,
            weight_bytes=total_weights,
            persistent_bytes=persistent,
            streamed_bytes=0,
            window_bytes=0,
            activation_bytes=activations,
            cold_start_seconds=cold_start,
            compute_seconds=compute_total,
            dma_seconds=0.0,
            stall_seconds=0.0,
            service_seconds=compute_total,
            pinned_layers=pinned,
        )

    # Clamp the window up to the largest streamed layer: a window that
    # cannot hold one layer's weights can never make progress.
    effective_window = max(window_bytes, max(streamed.values()))

    # Pipeline recurrence.  `loaded` holds (weight, compute-finish) of
    # streamed layers occupying the window; earliest-finishing first,
    # which in a serial schedule is layer order.
    loaded: Deque[Tuple[int, float]] = deque()
    occupancy = 0
    dma_ready = 0.0
    compute_ready = 0.0
    dma_total = 0.0
    stall = 0.0
    window_peak = 0
    for index in network.forward_schedule():
        ready = compute_ready
        nbytes = streamed.get(index, 0)
        if nbytes:
            start = dma_ready
            while occupancy + nbytes > effective_window:
                evicted_bytes, finish = loaded.popleft()
                occupancy -= evicted_bytes
                start = max(start, finish)
            load_done = start + dma(nbytes)
            dma_ready = load_done
            dma_total += dma(nbytes)
            occupancy += nbytes
            window_peak = max(window_peak, occupancy)
            ready = max(ready, load_done)
        stall += max(0.0, ready - compute_ready)
        finish = ready + compute[index]
        compute_ready = finish
        if nbytes:
            loaded.append((nbytes, finish))
    service = compute_ready

    return ServicePlan(
        model=network.name,
        residency=residency,
        weight_bytes=total_weights,
        persistent_bytes=persistent,
        streamed_bytes=streamed_total,
        window_bytes=window_peak,
        activation_bytes=activations,
        cold_start_seconds=cold_start,
        compute_seconds=compute_total,
        dma_seconds=dma_total,
        stall_seconds=stall,
        service_seconds=service,
        pinned_layers=pinned,
    )


def streamed_layer_bytes(network: Network,
                         plan: ServicePlan) -> Dict[int, int]:
    """Per-layer weight bytes the plan streams (weights minus pins).

    The static verifier (SP406) re-derives the plan's accounting from
    this map: summing it must give ``streamed_bytes``, and its maximum
    bounds the feasible window floor.
    """
    weights = weight_load_bytes(network)
    pinned = frozenset(plan.pinned_layers)
    return {i: w for i, w in weights.items() if i not in pinned}


def shrink_window(
    network: Network,
    system: SystemConfig,
    algos: AlgoConfig,
    plan: ServicePlan,
    factor: float = 0.5,
) -> ServicePlan:
    """Re-plan with a smaller window (overload-ladder rung 1).

    Halving (by default) the window trades footprint for stall.  The
    result's window may clamp at the largest streamed layer — the floor
    below which shrinking stops helping and the ladder must move to its
    next rung (shedding).
    """
    if plan.residency == "resident" or plan.streamed_bytes == 0:
        return plan
    target = max(1, int(plan.window_bytes * factor))
    return plan_service(
        network, system, algos,
        residency=plan.residency,
        window_bytes=target,
        pinned_bytes=plan.persistent_bytes,
    )

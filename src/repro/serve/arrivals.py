"""Open-loop request arrival processes for the serving simulator.

Serving is an *open-loop* workload: requests arrive on their own clock
whether or not the GPU keeps up, which is what makes tail latency and
shedding meaningful (a closed loop self-throttles and hides overload).
Four processes cover the scenarios the roadmap names:

* ``poisson`` — memoryless arrivals at a constant mean rate, the
  queueing-theory baseline;
* ``trace`` — explicit timestamps, either inline or from a file,
  replaying a recorded workload exactly;
* ``diurnal`` — an inhomogeneous Poisson process whose rate follows a
  raised-cosine day/night profile between a base and a peak rate;
* ``burst`` — Poisson background plus a flash-crowd window during which
  the rate multiplies.

Every process is seeded: the same :class:`ArrivalSpec` and request
count always generate the identical request stream (``random.Random``
with explicit integer seeds, no global RNG, no wall clock), which is
what makes whole serving runs bit-identical per (scenario, seed).

Specs parse from a compact CLI grammar, ``kind:key=value,...``::

    poisson:rate=200,seed=7
    trace:times=0.0;0.01;0.5;0.52
    trace:file=arrivals.txt
    diurnal:rate=50,peak=300,period=60,seed=3
    burst:rate=100,at=5,dur=2,x=10,seed=1
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import random

#: Arrival process kinds accepted by :meth:`ArrivalSpec.parse`.
ARRIVAL_KINDS = ("poisson", "trace", "diurnal", "burst")


class ArrivalSpecError(ValueError):
    """Raised when an arrival-spec string cannot be parsed/validated."""


@dataclass(frozen=True)
class Request:
    """One inference request in the open-loop stream.

    Attributes:
        rid: dense arrival index (0-based) — the deterministic
            tiebreaker everywhere times collide.
        model: zoo key of the requested model.
        time: arrival instant, simulated seconds.
        priority: larger = more important; the shedding ladder drops
            low-priority requests first.
    """

    rid: int
    model: str
    time: float
    priority: int = 0


@dataclass(frozen=True)
class ArrivalSpec:
    """One deterministic description of an open-loop arrival process.

    Attributes:
        kind: one of :data:`ARRIVAL_KINDS`.
        rate: mean arrivals/second (``poisson``/``burst``; the *base*
            rate of ``diurnal``).
        seed: RNG seed; same (spec, count) ⇒ same stream.
        peak: ``diurnal`` peak arrivals/second (>= rate).
        period: ``diurnal`` profile period, seconds.
        at: ``burst`` flash-crowd start, seconds.
        dur: ``burst`` flash-crowd duration, seconds.
        factor: ``burst`` rate multiplier inside the window.
        times: ``trace`` explicit arrival instants, ascending.
    """

    kind: str = "poisson"
    rate: float = 100.0
    seed: int = 0
    peak: float = 0.0
    period: float = 60.0
    at: float = 0.0
    dur: float = 0.0
    factor: float = 1.0
    times: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ArrivalSpecError(
                f"unknown arrival kind {self.kind!r}; "
                f"kinds: {', '.join(ARRIVAL_KINDS)}")
        if self.kind != "trace" and self.rate <= 0:
            raise ArrivalSpecError(
                f"arrival rate must be positive, got {self.rate}")
        if self.kind == "diurnal":
            if self.peak < self.rate:
                raise ArrivalSpecError(
                    f"diurnal peak ({self.peak}) must be >= base rate "
                    f"({self.rate})")
            if self.period <= 0:
                raise ArrivalSpecError(
                    f"diurnal period must be positive, got {self.period}")
        if self.kind == "burst":
            if self.factor < 1.0:
                raise ArrivalSpecError(
                    f"burst factor must be >= 1, got {self.factor}")
            if self.at < 0 or self.dur < 0:
                raise ArrivalSpecError(
                    "burst window (at, dur) cannot be negative")
        if self.kind == "trace":
            if not self.times:
                raise ArrivalSpecError(
                    "trace arrivals need times=... or file=...")
            if any(t < 0 for t in self.times):
                raise ArrivalSpecError("trace times cannot be negative")
            if any(b < a for a, b in zip(self.times, self.times[1:])):
                raise ArrivalSpecError("trace times must be ascending")

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        """Canonical compact spec string (parses back to an equal spec,
        except ``trace:file=`` which canonicalizes to its times)."""
        if self.kind == "trace":
            return "trace:times=" + ";".join(f"{t:g}" for t in self.times)
        parts = [f"rate={self.rate:g}", f"seed={self.seed}"]
        if self.kind == "diurnal":
            parts += [f"peak={self.peak:g}", f"period={self.period:g}"]
        if self.kind == "burst":
            parts += [f"at={self.at:g}", f"dur={self.dur:g}",
                      f"x={self.factor:g}"]
        return f"{self.kind}:" + ",".join(parts)

    @classmethod
    def parse(cls, text: str) -> "ArrivalSpec":
        """Parse the ``kind:key=value,...`` grammar documented above."""
        text = (text or "").strip()
        if not text:
            raise ArrivalSpecError("empty arrival spec")
        kind, _, rest = text.partition(":")
        kind = kind.strip()
        if kind not in ARRIVAL_KINDS:
            raise ArrivalSpecError(
                f"unknown arrival kind {kind!r}; "
                f"kinds: {', '.join(ARRIVAL_KINDS)}")
        fields: Dict[str, str] = {}
        for token in rest.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise ArrivalSpecError(
                    f"bad arrival token {token!r}: expected key=value")
            key, value = token.split("=", 1)
            fields[key.strip()] = value.strip()

        def number(key: str, default: float) -> float:
            if key not in fields:
                return default
            try:
                return float(fields.pop(key))
            except ValueError:
                raise ArrivalSpecError(
                    f"bad value for {key!r} in arrival spec {text!r}"
                ) from None

        values: Dict[str, object] = {"kind": kind}
        if kind == "trace":
            if "file" in fields:
                path = str(fields.pop("file"))
                try:
                    with open(path) as handle:
                        times = tuple(
                            float(line)
                            for line in handle.read().split()
                            if line.strip()
                        )
                except OSError as exc:
                    raise ArrivalSpecError(
                        f"cannot read trace file {path!r}: {exc}"
                    ) from None
                except ValueError:
                    raise ArrivalSpecError(
                        f"non-numeric time in trace file {path!r}"
                    ) from None
            elif "times" in fields:
                try:
                    times = tuple(
                        float(t)
                        for t in fields.pop("times").split(";")
                        if t.strip()
                    )
                except ValueError:
                    raise ArrivalSpecError(
                        f"bad trace times in {text!r}") from None
            else:
                raise ArrivalSpecError(
                    "trace arrivals need times=... or file=...")
            values["times"] = times
        else:
            rate = number("rate", 100.0)
            values["rate"] = rate
            values["seed"] = int(number("seed", 0))
            if kind == "diurnal":
                values["peak"] = number("peak", 2.0 * rate)
                values["period"] = number("period", 60.0)
            if kind == "burst":
                values["at"] = number("at", 0.0)
                values["dur"] = number("dur", 5.0)
                values["factor"] = number("x", 10.0)
        if fields:
            raise ArrivalSpecError(
                f"unknown arrival key(s) {sorted(fields)} for {kind!r}")
        return cls(**values)

    # ------------------------------------------------------------------
    def _profile_rate(self, t: float) -> float:
        """Instantaneous arrival rate at time ``t`` (thinning target)."""
        if self.kind == "diurnal":
            swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / self.period))
            return self.rate + (self.peak - self.rate) * swing
        if self.kind == "burst":
            if self.at <= t < self.at + self.dur:
                return self.rate * self.factor
            return self.rate
        return self.rate

    def _max_rate(self) -> float:
        if self.kind == "diurnal":
            return max(self.rate, self.peak)
        if self.kind == "burst":
            return self.rate * self.factor
        return self.rate

    def generate(self, count: int) -> List[float]:
        """The first ``count`` arrival instants, deterministically.

        Homogeneous processes draw exponential gaps directly;
        ``diurnal``/``burst`` use Lewis-Shedler thinning against the
        profile's maximum rate.  ``trace`` returns its recorded times
        (capped at ``count``).
        """
        if count < 0:
            raise ArrivalSpecError(
                f"arrival count cannot be negative, got {count}")
        if self.kind == "trace":
            return list(self.times[:count])
        rng = random.Random(self.seed)
        ceiling = self._max_rate()
        out: List[float] = []
        t = 0.0
        while len(out) < count:
            t += rng.expovariate(ceiling)
            if self.kind == "poisson":
                out.append(t)
                continue
            # Thinning: accept with probability rate(t) / ceiling.
            if rng.random() * ceiling <= self._profile_rate(t):
                out.append(t)
        return out


@dataclass(frozen=True)
class ModelSpec:
    """One served model: zoo key plus its request priority.

    Parsed from ``name[:priority]`` — e.g. ``vgg16`` or ``vgg16:2``.
    Priority feeds the shedding ladder: under overload, lower-priority
    requests are dropped first.
    """

    name: str
    priority: int = 0

    @classmethod
    def parse(cls, spec: str) -> "ModelSpec":
        from ..zoo import available

        parts = spec.strip().split(":")
        name = parts[0].strip()
        if not name:
            raise ArrivalSpecError(f"empty model name in {spec!r}")
        if name not in available():
            raise ArrivalSpecError(
                f"unknown model {name!r} in {spec!r}; "
                f"available: {', '.join(available())}")
        if len(parts) > 2:
            raise ArrivalSpecError(
                f"bad model spec {spec!r} (name[:priority])")
        try:
            priority = int(parts[1]) if len(parts) > 1 and parts[1] else 0
        except ValueError:
            raise ArrivalSpecError(
                f"priority must be an integer in {spec!r}") from None
        return cls(name=name, priority=priority)


def parse_models(text: str) -> List[ModelSpec]:
    """Parse a comma-separated model list, e.g. ``vgg16:1,alexnet``."""
    models = [ModelSpec.parse(tok)
              for tok in text.split(",") if tok.strip()]
    if not models:
        raise ArrivalSpecError("no models given")
    seen = set()
    for model in models:
        if model.name in seen:
            raise ArrivalSpecError(f"duplicate model {model.name!r}")
        seen.add(model.name)
    return models


def generate_requests(
    arrivals: ArrivalSpec,
    models: Sequence[ModelSpec],
    count: int,
    weights: Optional[Sequence[float]] = None,
) -> List[Request]:
    """Materialize the request stream: arrival times x model choices.

    Model assignment draws from a *separate* seeded RNG (derived from
    the arrival seed) so adding a model changes which model each request
    asks for but not *when* requests arrive — scenarios stay comparable
    across model-set edits.  ``weights`` biases the choice (default
    uniform).
    """
    if weights is not None and len(weights) != len(models):
        raise ArrivalSpecError(
            f"{len(weights)} weights for {len(models)} models")
    times = arrivals.generate(count)
    picker = random.Random(arrivals.seed * 1_000_003 + 17)
    names = [m.name for m in models]
    priorities = {m.name: m.priority for m in models}
    chosen = picker.choices(names, weights=weights, k=len(times))
    return [
        Request(rid=rid, model=model, time=time,
                priority=priorities[model])
        for rid, (time, model) in enumerate(zip(times, chosen))
    ]

"""The serving event loop: many models time-sharing one modeled GPU.

One :func:`simulate_serving` run drains a deterministic open-loop
request stream (:mod:`repro.serve.arrivals`) through a single serial
GPU whose device memory is one cnmem-style :class:`PoolAllocator`.
Models multiplex the pool: a model's *persistent* weights (all of them
for ``resident``, the pinned set for ``pinned``, none for ``layered``)
are installed on first use — a cold start paying the PCIe upload — and
evicted LRU when another model needs the room.  Each request then
allocates its transient footprint (sliding window + activations),
replays its :class:`~repro.serve.layering.ServicePlan`, and frees it.

Under overload the server degrades along a ladder, mirroring the
scheduler's admission ladder (strong before weak, never fail outright
while a cheaper mode remains):

1. **shrink window** — streaming models re-plan with half the window,
   trading per-request stall for footprint (fewer evictions / cold
   starts keep throughput up);
2. **shed low-priority** — the queue holds its depth by dropping the
   worst-ranked request (lowest priority, then latest arrival);
3. **reject** — beyond the hard depth bound, arrivals are turned away
   at the door.

Everything is deterministic per (scenario, seed): arrivals and fault
draws come from seeded RNGs, queue order is a total order
``(-priority, arrival, rid)``, and the loop carries a no-progress
guard (the scheduler's idiom) so a logic bug surfaces as a loud
``RuntimeError`` instead of a silent spin.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import random

from ..alloc.pool import Allocation, OutOfMemoryError, PoolAllocator
from ..core.algo_config import AlgoConfig
from ..core.inference import weight_load_bytes
from ..faults.spec import FaultSpec
from ..graph.network import Network
from ..hw.config import SystemConfig
from ..obs.instrument import Instrumentation
from ..sim.timeline import EventKind, Timeline
from ..sim.trace import MODEL_STREAM_PREFIX
from ..zoo import build
from .arrivals import ArrivalSpec, ModelSpec, Request, generate_requests
from .layering import RESIDENCY_POLICIES, ServePlanError, ServicePlan, \
    plan_service, shrink_window

#: Residency choices accepted by :class:`ServeConfig` (adds ``auto``).
RESIDENCY_CHOICES = ("auto",) + RESIDENCY_POLICIES

#: Ceiling on ladder rung-1 firings per model — below this the window
#: has long since clamped at its largest-layer floor.
MAX_WINDOW_SHRINKS = 4


class ServeConfigError(ValueError):
    """Raised when a serving configuration cannot be realized."""


@dataclass(frozen=True)
class ServeConfig:
    """One serving scenario: who arrives, what serves them, what fits.

    Attributes:
        models: the deployed model set (zoo keys + priorities).
        arrivals: open-loop arrival process.
        requests: request-stream length to generate and drain.
        budget_bytes: device pool capacity shared by all models.
        slo_seconds: end-to-end latency target for SLO attainment.
        residency: ``auto`` (fair-share heuristic, below) or one fixed
            policy from :data:`~repro.serve.layering.RESIDENCY_POLICIES`.
        window_bytes: requested sliding window for streaming policies.
        pinned_bytes: on-device weight budget for ``pinned``.
        batch: per-request batch size.
        shrink_depth: queue depth that fires ladder rung 1.
        shed_depth: queue depth that fires rung 2 (must be >= rung 1).
        reject_depth: hard queue bound firing rung 3 (>= rung 2).
        faults: imperfect-machine description (PCIe degradation and
            jitter, transient DMA failures, timed budget shrinks and
            model evictions); :meth:`FaultSpec.none` = perfect machine.
        fault_seed: seed for the stochastic fault draws.
    """

    models: Tuple[ModelSpec, ...]
    arrivals: ArrivalSpec
    requests: int = 500
    budget_bytes: int = 4 * (1 << 30)
    slo_seconds: float = 0.25
    residency: str = "auto"
    window_bytes: int = 64 * (1 << 20)
    pinned_bytes: int = 128 * (1 << 20)
    batch: int = 1
    shrink_depth: int = 8
    shed_depth: int = 16
    reject_depth: int = 32
    faults: FaultSpec = field(default_factory=FaultSpec.none)
    fault_seed: int = 0

    def __post_init__(self) -> None:
        if not self.models:
            raise ServeConfigError("serving needs at least one model")
        if self.requests < 0:
            raise ServeConfigError(
                f"request count cannot be negative, got {self.requests}")
        if self.budget_bytes <= 0:
            raise ServeConfigError(
                f"budget_bytes must be positive, got {self.budget_bytes}")
        if self.slo_seconds <= 0:
            raise ServeConfigError(
                f"slo_seconds must be positive, got {self.slo_seconds}")
        if self.residency not in RESIDENCY_CHOICES:
            raise ServeConfigError(
                f"unknown residency {self.residency!r}; "
                f"choices: {', '.join(RESIDENCY_CHOICES)}")
        if not 0 < self.shrink_depth <= self.shed_depth <= self.reject_depth:
            raise ServeConfigError(
                "ladder depths must satisfy 0 < shrink <= shed <= reject, "
                f"got {self.shrink_depth}/{self.shed_depth}/"
                f"{self.reject_depth}")


@dataclass(frozen=True)
class RequestRecord:
    """Terminal fate of one request."""

    rid: int
    model: str
    priority: int
    arrival: float
    outcome: str                 # one of obs.SERVE_OUTCOMES
    start: float = 0.0           # service start (completed only)
    finish: float = 0.0          # service end (completed only)
    cold_start: bool = False     # this request paid a model install

    @property
    def latency(self) -> float:
        """Arrival-to-completion latency (0 for non-completions)."""
        return self.finish - self.arrival if self.outcome == "completed" \
            else 0.0


@dataclass
class ServeResult:
    """Everything one serving run produced."""

    config: ServeConfig
    records: List[RequestRecord]
    plans: Dict[str, ServicePlan]
    timeline: Timeline
    obs: Instrumentation
    pool_peak_bytes: int
    makespan: float
    cold_starts: int
    evictions: int
    window_shrinks: int
    unservable: Tuple[str, ...] = ()

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.outcome == "completed")

    @property
    def shed(self) -> int:
        return sum(1 for r in self.records if r.outcome == "shed")

    @property
    def rejected(self) -> int:
        return sum(1 for r in self.records if r.outcome == "rejected")


def _queue_key(request: Request) -> Tuple[int, float, int]:
    """Total service order: priority desc, then FIFO, then rid."""
    return (-request.priority, request.time, request.rid)


class _PendingQueue:
    """The pending-request queue as a pair of heaps over one live set.

    The old implementation kept a sorted list (``bisect.insort`` is
    O(n) per admit, and shed displacement popped from the far end).
    Here a min-heap yields the service order and a max-heap (the same
    keys negated) yields the worst-ranked request for displacement;
    whichever heap a request leaves through, its rid is removed from
    the live set and the stale twin entry is discarded lazily on the
    next peek.

    Every heap entry is ``(key, seq, request)`` with ``seq`` a monotone
    admission counter as an explicit tie-breaker.  ``_queue_key`` is
    already a total order (rid is unique), so heap order is *identical*
    to the sorted-list order — the seq exists so that comparisons can
    never fall through to the (uncomparable) Request object, by
    construction rather than by reliance on rid uniqueness.
    """

    __slots__ = ("_best", "_worst", "_live", "_seq")

    def __init__(self) -> None:
        self._best: List[tuple] = []
        self._worst: List[tuple] = []
        self._live: set = set()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._live)

    def push(self, request: Request) -> None:
        priority, time, rid = _queue_key(request)
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._best, ((priority, time, rid), seq, request))
        heapq.heappush(self._worst, ((-priority, -time, -rid), seq, request))
        self._live.add(request.rid)

    def worst(self) -> Optional[Request]:
        """The request shed displacement would evict (None when empty)."""
        heap = self._worst
        while heap and heap[0][2].rid not in self._live:
            heapq.heappop(heap)
        return heap[0][2] if heap else None

    def pop_worst(self) -> Request:
        request = self.worst()
        if request is None:
            raise IndexError("pop_worst from an empty queue")
        heapq.heappop(self._worst)
        self._live.remove(request.rid)
        return request

    def pop_best(self) -> Request:
        heap = self._best
        while heap and heap[0][2].rid not in self._live:
            heapq.heappop(heap)
        if not heap:
            raise IndexError("pop_best from an empty queue")
        request = heapq.heappop(heap)[2]
        self._live.remove(request.rid)
        return request


class _ModelState:
    """Mutable per-model serving state."""

    __slots__ = ("spec", "network", "algos", "plan", "allocation",
                 "last_used", "streamed_dma", "shrinks")

    def __init__(self, spec: ModelSpec, network: Network,
                 algos: AlgoConfig, plan: ServicePlan):
        self.spec = spec
        self.network = network
        self.algos = algos
        self.plan = plan
        self.allocation: Optional[Allocation] = None
        self.last_used = -1.0
        self.streamed_dma: List[float] = []
        self.shrinks = 0

    @property
    def installed(self) -> bool:
        return self.allocation is not None or self.plan.persistent_bytes == 0


def _resolve_residency(
    config: ServeConfig,
    networks: Dict[str, Network],
    algo_of: Dict[str, AlgoConfig],
    system: SystemConfig,
) -> Dict[str, ServicePlan]:
    """Pick each model's plan; ``auto`` = resident within a fair share.

    The heuristic: a model keeps classic resident serving if its whole
    resident footprint fits in ``budget / n_models`` (every model can
    then stay installed simultaneously — zero steady-state cold
    starts); otherwise it falls back to demand layering, which is what
    lets a model set whose resident weights exceed the budget serve at
    all.
    """
    plans: Dict[str, ServicePlan] = {}
    share = config.budget_bytes // len(config.models)
    for spec in config.models:
        name = spec.name
        network = networks[name]
        algos = algo_of[name]
        if config.residency == "auto":
            resident = plan_service(network, system, algos, "resident")
            if resident.footprint_bytes <= share:
                plans[name] = resident
            else:
                plans[name] = plan_service(
                    network, system, algos, "layered",
                    window_bytes=config.window_bytes)
        else:
            plans[name] = plan_service(
                network, system, algos, config.residency,
                window_bytes=config.window_bytes,
                pinned_bytes=config.pinned_bytes)
    return plans


def _degraded_system(system: SystemConfig, faults: FaultSpec) -> SystemConfig:
    """Apply the sustained PCIe degradation to the planning system."""
    if faults.pcie_bw_factor >= 1.0:
        return system
    link = replace(
        system.pcie,
        dma_bandwidth=system.pcie.dma_bandwidth * faults.pcie_bw_factor)
    return replace(system, pcie=link)


def simulate_serving(
    config: ServeConfig,
    system: Optional[SystemConfig] = None,
    obs: Optional[Instrumentation] = None,
) -> ServeResult:
    """Drain the scenario's request stream; return the full record.

    Unlike the training-side simulators, ``obs=None`` here creates a
    *live* :class:`Instrumentation` rather than skipping hooks: the
    serving report is defined in terms of the per-model latency
    histograms (p50/p95/p99 via quantile, SLO attainment via
    fraction-below), so metrics are the product, not a side channel.
    """
    system = system if system is not None else SystemConfig()
    system = _degraded_system(system, config.faults)
    obs = obs if obs is not None else Instrumentation()

    # -- static per-model state ----------------------------------------
    networks: Dict[str, Network] = {}
    algo_of: Dict[str, AlgoConfig] = {}
    for spec in config.models:
        network = build(spec.name, config.batch)
        networks[spec.name] = network
        # Serving is memory-constrained by definition; memory-optimal
        # algorithms keep workspace out of the multiplexed pool.
        algo_of[spec.name] = AlgoConfig.memory_optimal(network)
    plans = _resolve_residency(config, networks, algo_of, system)

    states: Dict[str, _ModelState] = {}
    unservable: List[str] = []
    for spec in config.models:
        state = _ModelState(spec, networks[spec.name],
                            algo_of[spec.name], plans[spec.name])
        pinned = frozenset(state.plan.pinned_layers)
        dma = system.pcie.dma_time
        state.streamed_dma = [
            dma(nbytes)
            for index, nbytes in sorted(
                weight_load_bytes(state.network).items())
            if index not in pinned
        ]
        states[spec.name] = state
        if state.plan.footprint_bytes > config.budget_bytes:
            # Even alone on the device this plan cannot serve: its
            # requests are rejected at service time (never silently).
            unservable.append(spec.name)

    requests = generate_requests(config.arrivals, config.models,
                                 config.requests)
    rng = random.Random(config.fault_seed)
    pool = PoolAllocator(config.budget_bytes)
    timeline = Timeline()
    records: List[RequestRecord] = []
    pending = _PendingQueue()
    shrink_events = sorted(config.faults.budget_shrinks)
    evict_events = sorted(config.faults.evictions)
    cold_starts = 0
    evictions = 0
    window_shrinks = 0
    gpu_free = 0.0
    next_arrival = 0

    # ------------------------------------------------------------------
    def evict(name: str) -> None:
        nonlocal evictions
        state = states[name]
        if state.allocation is not None:
            pool.free(state.allocation)
            state.allocation = None
            evictions += 1

    def make_room(nbytes: int, keep: str) -> bool:
        """Evict idle installed models (LRU first) until fit or empty."""
        while not pool.can_fit(nbytes):
            idle = [s for s in states.values()
                    if s.allocation is not None and s.spec.name != keep]
            if not idle:
                return pool.can_fit(nbytes)
            victim = min(idle, key=lambda s: (s.last_used, s.spec.name))
            evict(victim.spec.name)
        return True

    def apply_timed_faults(now: float) -> None:
        """Budget shrinks and forced evictions due at or before now."""
        nonlocal shrink_events, evict_events
        while shrink_events and shrink_events[0][0] <= now:
            when, factor = shrink_events.pop(0)
            target = max(1, int(config.budget_bytes * factor))
            for blocker in pool.blockers_above(target):
                owner = next((n for n, s in states.items()
                              if s.allocation is blocker), None)
                if owner is not None:
                    evict(owner)
                else:
                    pool.free(blocker)
            pool.shrink(target)
            obs.fault_event("shrink", "applied")
            timeline.record("serve", EventKind.FAULT,
                            f"shrink->{target >> 20}MiB", when, when,
                            nbytes=target)
        while evict_events and evict_events[0][0] <= now:
            when, name = evict_events.pop(0)
            if name in states and states[name].allocation is not None:
                evict(name)
                obs.fault_event("evict", "applied")
                timeline.record("serve", EventKind.FAULT,
                                f"evict {name}", when, when)
            else:
                obs.fault_event("evict", "no-target")

    def fault_overhead(state: _ModelState) -> float:
        """Stochastic per-request DMA perturbation, seconds.

        Jitter scales each streamed transfer's bandwidth by
        U(1-j, 1+j); transient failures retry with exponential backoff
        up to the spec's attempt bound, each failed attempt wasting its
        transfer time.  Draw order is fixed (jitter then failures,
        layer by layer) so runs are bit-identical per fault seed.
        """
        faults = config.faults
        if not state.streamed_dma:
            return 0.0
        rate = faults.dma_failure_rate
        if faults.prefetch_failure_rate is not None:
            rate = faults.prefetch_failure_rate
        if rate == 0.0 and faults.pcie_jitter == 0.0:
            return 0.0
        extra = 0.0
        for seconds in state.streamed_dma:
            if faults.pcie_jitter:
                factor = rng.uniform(1.0 - faults.pcie_jitter,
                                     1.0 + faults.pcie_jitter)
                extra += seconds * (1.0 / factor - 1.0)
            if rate:
                attempt = 1
                backoff = faults.backoff_base
                while (attempt < faults.max_dma_attempts
                       and rng.random() < rate):
                    obs.dma_attempt("demand", False)
                    obs.dma_backoff(backoff)
                    extra += seconds + backoff
                    backoff *= faults.backoff_factor
                    attempt += 1
                if attempt > 1:
                    obs.fault_event("dma", "recovered")
        # Favourable jitter can only reclaim DMA the pipeline exposed.
        return max(extra, -state.plan.stall_seconds)

    def shrink_ladder() -> None:
        """Ladder rung 1: halve every streaming model's window."""
        nonlocal window_shrinks
        for state in states.values():
            if (state.plan.streamed_bytes == 0
                    or state.shrinks >= MAX_WINDOW_SHRINKS):
                continue
            smaller = shrink_window(state.network, system, state.algos,
                                    state.plan)
            if smaller.window_bytes < state.plan.window_bytes:
                state.plan = smaller
                state.shrinks += 1
                window_shrinks += 1
                obs.serve_window_shrink(state.spec.name)

    def admit(request: Request) -> None:
        """Ladder rungs 2 and 3 guard the queue at the door.

        Rung 2 (``shed_depth``) is priority displacement: a
        higher-priority arrival sheds the worst-ranked queued request
        and takes its place, so depth holds while rank improves.
        Equal-or-lower-priority arrivals still enqueue — the queue
        grows toward rung 3 (``reject_depth``), the hard bound where
        arrivals are turned away outright.
        """
        if len(pending) >= config.reject_depth:
            records.append(RequestRecord(
                rid=request.rid, model=request.model,
                priority=request.priority, arrival=request.time,
                outcome="rejected"))
            obs.serve_request(request.model, "rejected")
            return
        if (len(pending) >= config.shed_depth
                and request.priority > pending.worst().priority):
            worst = pending.pop_worst()
            records.append(RequestRecord(
                rid=worst.rid, model=worst.model,
                priority=worst.priority, arrival=worst.time,
                outcome="shed"))
            obs.serve_request(worst.model, "shed")
        pending.push(request)
        obs.serve_queue_depth(len(pending))

    # -- the event loop ------------------------------------------------
    last_snapshot: Optional[Tuple[int, int, int, float]] = None
    while next_arrival < len(requests) or pending:
        snapshot = (next_arrival, len(pending), len(records), gpu_free)
        if snapshot == last_snapshot:
            raise RuntimeError(
                "serving event loop made no progress "
                f"(arrival={next_arrival}, queued={len(pending)}, "
                f"decided={len(records)}, t={gpu_free:.6f}); "
                "this is a bug in the overload ladder")
        last_snapshot = snapshot

        if not pending:
            gpu_free = max(gpu_free, requests[next_arrival].time)
        apply_timed_faults(gpu_free)
        while (next_arrival < len(requests)
               and requests[next_arrival].time <= gpu_free):
            admit(requests[next_arrival])
            next_arrival += 1
        if not pending:
            continue
        if len(pending) >= config.shrink_depth:
            shrink_ladder()

        request = pending.pop_best()
        state = states[request.model]
        plan = state.plan
        lane = MODEL_STREAM_PREFIX + request.model

        if plan.footprint_bytes > pool.capacity:
            records.append(RequestRecord(
                rid=request.rid, model=request.model,
                priority=request.priority, arrival=request.time,
                outcome="rejected"))
            obs.serve_request(request.model, "rejected")
            continue

        start = max(gpu_free, request.time)
        cold = False
        if state.allocation is None and plan.persistent_bytes > 0:
            if not make_room(plan.persistent_bytes, request.model):
                records.append(RequestRecord(
                    rid=request.rid, model=request.model,
                    priority=request.priority, arrival=request.time,
                    outcome="rejected"))
                obs.serve_request(request.model, "rejected")
                continue
            state.allocation = pool.alloc(plan.persistent_bytes,
                                          f"W[{request.model}]")
            cold = True
            cold_starts += 1
            obs.serve_cold_start(request.model, plan.cold_start_seconds)
            timeline.record(lane, EventKind.PREFETCH, "install",
                            start, start + plan.cold_start_seconds,
                            nbytes=plan.persistent_bytes)
            start += plan.cold_start_seconds

        transient = plan.window_bytes + plan.activation_bytes
        if transient and not make_room(transient, request.model):
            records.append(RequestRecord(
                rid=request.rid, model=request.model,
                priority=request.priority, arrival=request.time,
                outcome="rejected"))
            obs.serve_request(request.model, "rejected")
            continue
        scratch = pool.alloc(transient, f"T[{request.model}]") \
            if transient else None
        obs.pool_sample(pool.live_bytes, pool.capacity,
                        pool.fragmentation)

        service = plan.service_seconds + fault_overhead(state)
        finish = start + service
        timeline.record(lane, EventKind.FORWARD, f"req{request.rid}",
                        start, finish, nbytes=plan.streamed_bytes)
        if plan.stall_seconds > 0:
            obs.stall("demand-fetch", plan.stall_seconds)
        if plan.dma_seconds > 0:
            obs.pcie_transfer("demand", plan.streamed_bytes,
                              plan.dma_seconds)
        if scratch is not None:
            pool.free(scratch)
        state.last_used = finish
        gpu_free = finish
        records.append(RequestRecord(
            rid=request.rid, model=request.model,
            priority=request.priority, arrival=request.time,
            outcome="completed", start=start, finish=finish,
            cold_start=cold))
        obs.serve_request(request.model, "completed")
        obs.serve_latency(request.model, finish - request.time)

    apply_timed_faults(float("inf"))
    obs.pool_peak(pool.peak_bytes)
    makespan = timeline.span if len(timeline) else 0.0
    obs.sched_makespan(makespan)
    records.sort(key=lambda r: r.rid)
    return ServeResult(
        config=config,
        records=records,
        plans={name: states[name].plan for name in states},
        timeline=timeline,
        obs=obs,
        pool_peak_bytes=pool.peak_bytes,
        makespan=makespan,
        cold_starts=cold_starts,
        evictions=evictions,
        window_shrinks=window_shrinks,
        unservable=tuple(sorted(unservable)),
    )

"""Memory allocators: device pool (cnmem-style), pinned host, usage stats."""

from .pinned import PinnedBuffer, PinnedHostAllocator, PinnedMemoryError
from .pool import (ALIGNMENT, Allocation, DoubleFreeError, OutOfMemoryError,
                   PoolAllocator)
from .stats import UsageSample, UsageTracker

__all__ = [
    "ALIGNMENT",
    "Allocation",
    "DoubleFreeError",
    "OutOfMemoryError",
    "PinnedBuffer",
    "PinnedHostAllocator",
    "PinnedMemoryError",
    "PoolAllocator",
    "UsageSample",
    "UsageTracker",
]

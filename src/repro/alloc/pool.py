"""cnmem-style device memory pool.

vDNN "employs the open-source asynchronous memory allocation/release API
library distributed by NVIDIA [cnmem]": a pool sized to the physical GPU
memory is reserved once, and all tensor (de)allocations are served from
it without touching ``cudaMalloc``/``cudaFree`` (Section III-B).

:class:`PoolAllocator` reproduces that allocator faithfully enough to
measure what the paper measures: best-fit allocation with block
splitting, free-block coalescing, 256-byte alignment (CUDA's allocation
granularity), an out-of-memory signal that defines *trainability*, and
live/peak byte accounting.

Free blocks are indexed twice, both orders maintained with ``bisect``:

* by **offset** — an ordered list that makes coalescing a neighbour
  lookup instead of a scan;
* by **(size, offset)** — an ordered list that makes best-fit placement
  one binary search (smallest fitting hole, ties broken by lowest
  offset) and ``largest_free_block``/``can_fit`` O(1) reads.

``malloc``/``free``/coalesce/placement are therefore O(log n) in the
number of free blocks, which is what keeps multi-tenant schedules and
10k-block allocation traces fast.  (``first_fit`` placement — kept for
the fragmentation ablation — still scans offsets in order.)
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: CUDA device allocations are 256-byte aligned.
ALIGNMENT = 256


class OutOfMemoryError(MemoryError):
    """Raised when an allocation cannot be satisfied from the pool.

    Carries enough context for the dynamic policy to report why a
    configuration is untrainable.
    """

    def __init__(self, requested: int, live: int, capacity: int, tag: str = ""):
        self.requested = requested
        self.live = live
        self.capacity = capacity
        self.tag = tag
        super().__init__(
            f"pool OOM allocating {requested} bytes"
            + (f" for {tag!r}" if tag else "")
            + f": {live}/{capacity} bytes live"
        )


@dataclass
class Allocation:
    """A live block handed out by the pool."""

    offset: int
    size: int          # aligned size actually reserved
    requested: int     # caller-visible size
    tag: str = ""
    freed: bool = field(default=False, compare=False)


class DoubleFreeError(ValueError):
    """Raised when an already-released block is freed again.

    Carries the block's placement so the schedule sanitizer (and humans
    reading a traceback) can say *which* allocation was freed twice, not
    just that one was.
    """

    def __init__(self, allocation: "Allocation"):
        self.offset = allocation.offset
        self.size = allocation.size
        self.tag = allocation.tag
        super().__init__(
            f"double free of block at offset {allocation.offset} "
            f"({allocation.size} bytes"
            + (f", tag {allocation.tag!r}" if allocation.tag else "")
            + ")"
        )


def _align(nbytes: int) -> int:
    return (nbytes + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


#: Placement strategies: cnmem uses best-fit; first-fit is provided for
#: the fragmentation ablation.
STRATEGIES = ("best_fit", "first_fit")


class PoolAllocator:
    """Pool allocator with splitting, coalescing and pluggable placement."""

    def __init__(self, capacity: int, strategy: str = "best_fit"):
        if capacity <= 0:
            raise ValueError("pool capacity must be positive")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {strategy!r}"
            )
        self.capacity = capacity
        self.strategy = strategy
        # Free blocks as {offset: size}, kept coalesced and disjoint,
        # plus the two bisect-maintained orderings described above.
        self._free: Dict[int, int] = {0: capacity}
        self._free_offsets: List[int] = [0]
        self._free_by_size: List[Tuple[int, int]] = [(capacity, 0)]
        self._live: Dict[int, Allocation] = {}
        self._live_bytes = 0
        self._peak_bytes = 0
        self._alloc_count = 0
        self._free_count = 0

    # ------------------------------------------------------------------
    # Free-index maintenance (every operation O(log n))
    # ------------------------------------------------------------------
    def _add_free(self, offset: int, size: int) -> None:
        self._free[offset] = size
        insort(self._free_offsets, offset)
        insort(self._free_by_size, (size, offset))

    def _remove_free(self, offset: int) -> int:
        size = self._free.pop(offset)
        index = bisect_left(self._free_offsets, offset)
        del self._free_offsets[index]
        index = bisect_left(self._free_by_size, (size, offset))
        del self._free_by_size[index]
        return size

    # ------------------------------------------------------------------
    # Core API
    # ------------------------------------------------------------------
    def _place(self, size: int) -> Optional[int]:
        if self.strategy == "first_fit":
            # Lowest-offset fitting hole; O(n) scan kept for the ablation.
            for offset in self._free_offsets:
                if self._free[offset] >= size:
                    return offset
            return None
        # Best fit: smallest hole that fits, ties broken by lowest
        # offset — exactly the first (size, offset) pair at or after
        # (size, -1) in the size-ordered index.
        index = bisect_left(self._free_by_size, (size, -1))
        if index == len(self._free_by_size):
            return None
        return self._free_by_size[index][1]

    def alloc(self, nbytes: int, tag: str = "") -> Allocation:
        """Reserve ``nbytes`` (rounded up to the alignment granule)."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        size = max(_align(nbytes), ALIGNMENT)

        best_offset = self._place(size)
        if best_offset is None:
            raise OutOfMemoryError(size, self._live_bytes, self.capacity, tag)
        best_size = self._remove_free(best_offset)
        if best_size > size:
            self._add_free(best_offset + size, best_size - size)

        allocation = Allocation(offset=best_offset, size=size, requested=nbytes, tag=tag)
        self._live[best_offset] = allocation
        self._live_bytes += size
        if self._live_bytes > self._peak_bytes:
            self._peak_bytes = self._live_bytes
        self._alloc_count += 1
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Return a block to the pool, coalescing with free neighbours."""
        if allocation.freed:
            raise DoubleFreeError(allocation)
        stored = self._live.pop(allocation.offset, None)
        if stored is not allocation:
            raise ValueError(
                f"block at offset {allocation.offset} is not live in this pool"
            )
        allocation.freed = True
        self._live_bytes -= allocation.size
        self._free_count += 1

        offset, size = allocation.offset, allocation.size
        # Coalesce with the block immediately after (dict lookup).
        if offset + size in self._free:
            size += self._remove_free(offset + size)
        # Coalesce with the block immediately before (offset-order
        # predecessor, found by binary search).
        index = bisect_right(self._free_offsets, offset) - 1
        if index >= 0:
            prev_offset = self._free_offsets[index]
            if prev_offset + self._free[prev_offset] == offset:
                prev_size = self._remove_free(prev_offset)
                offset, size = prev_offset, prev_size + size
        self._add_free(offset, size)

    def free_all(self) -> None:
        """Release every live block (end-of-iteration reset)."""
        for allocation in list(self._live.values()):
            self.free(allocation)

    def blockers_above(self, boundary: int) -> List[Allocation]:
        """Live blocks extending past ``boundary``, highest offset first.

        These are the allocations a caller must free (e.g. by evicting
        their owners) before :meth:`shrink` to ``boundary`` can succeed.
        """
        return sorted(
            (a for a in self._live.values() if a.offset + a.size > boundary),
            key=lambda a: -a.offset,
        )

    def shrink(self, new_capacity: int) -> None:
        """Reduce the pool to ``new_capacity`` bytes (mid-run budget cut).

        Only free space can be surrendered: raises ``ValueError`` while
        any live block extends past the new boundary — callers evict the
        :meth:`blockers_above` first.  Free blocks beyond the boundary
        are dropped and a straddling one is truncated.
        """
        if new_capacity <= 0:
            raise ValueError("pool capacity must be positive")
        if new_capacity > self.capacity:
            raise ValueError(
                f"shrink cannot grow the pool "
                f"({new_capacity} > {self.capacity} bytes)"
            )
        if new_capacity == self.capacity:
            return
        blockers = self.blockers_above(new_capacity)
        if blockers:
            raise ValueError(
                f"cannot shrink to {new_capacity} bytes: {len(blockers)} "
                f"live block(s) extend past the new boundary"
            )
        for offset in [o for o in self._free_offsets
                       if o + self._free[o] > new_capacity]:
            self._remove_free(offset)
            if offset < new_capacity:
                self._add_free(offset, new_capacity - offset)
        self.capacity = new_capacity

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        """Bytes currently reserved."""
        return self._live_bytes

    @property
    def peak_bytes(self) -> int:
        """High-water mark of reserved bytes since construction."""
        return self._peak_bytes

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._live_bytes

    @property
    def largest_free_block(self) -> int:
        """Largest contiguous free extent (what one alloc can get)."""
        return self._free_by_size[-1][0] if self._free_by_size else 0

    def can_fit(self, nbytes: int) -> bool:
        """Whether :meth:`alloc` of ``nbytes`` would succeed right now.

        Accounts for both alignment rounding and fragmentation — total
        free bytes may exceed ``nbytes`` while no single hole does.
        """
        if nbytes < 0:
            return False
        return max(_align(nbytes), ALIGNMENT) <= self.largest_free_block

    @property
    def live_allocations(self) -> List[Allocation]:
        return list(self._live.values())

    @property
    def fragmentation(self) -> float:
        """1 - (largest free block / total free bytes); 0 when empty/full."""
        total_free = self.capacity - self._live_bytes
        if total_free <= 0 or not self._free_by_size:
            return 0.0
        return 1.0 - self.largest_free_block / total_free

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "capacity": self.capacity,
            "live_bytes": self._live_bytes,
            "peak_bytes": self._peak_bytes,
            "allocs": self._alloc_count,
            "frees": self._free_count,
        }

    def check_invariants(self) -> None:
        """Verify the free indices and live set tile the pool exactly once.

        Used by tests and by paranoid callers; O(n log n).
        """
        if self._free_offsets != sorted(self._free):
            raise AssertionError("free offset index out of sync with free dict")
        expected_by_size = sorted((s, o) for o, s in self._free.items())
        if self._free_by_size != expected_by_size:
            raise AssertionError("free size index out of sync with free dict")
        spans = [(o, s, "free") for o, s in self._free.items()]
        spans += [(a.offset, a.size, "live") for a in self._live.values()]
        spans.sort()
        cursor = 0
        previous_kind = None
        for offset, size, kind in spans:
            if offset != cursor:
                raise AssertionError(
                    f"pool corruption: gap/overlap at offset {cursor}..{offset}"
                )
            if kind == "free" and previous_kind == "free":
                raise AssertionError("adjacent free blocks were not coalesced")
            cursor = offset + size
            previous_kind = kind
        if cursor != self.capacity:
            raise AssertionError(
                f"pool corruption: blocks cover {cursor} of {self.capacity} bytes"
            )

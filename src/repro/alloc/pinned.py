"""Pinned (page-locked) host memory accounting.

Offloaded feature maps land in host buffers allocated with
``cudaMallocHost`` (Section III-B).  Pinned memory cannot be swapped, so
runtimes bound how much of host DRAM they lock down; exceeding the bound
is a hard failure just like device OOM.  Figure 12 reports exactly this
allocator's high-water mark per network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


class PinnedMemoryError(MemoryError):
    """Raised when the pinned-memory budget is exhausted."""


@dataclass
class PinnedBuffer:
    """One host-side staging buffer for an offloaded tensor."""

    buffer_id: int
    size: int
    tag: str = ""


class PinnedHostAllocator:
    """Tracks cudaMallocHost-style pinned allocations against a budget."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("pinned capacity must be positive")
        self.capacity = capacity
        self._next_id = 0
        self._live: Dict[int, PinnedBuffer] = {}
        self._live_bytes = 0
        self._peak_bytes = 0
        self._total_allocated = 0

    def alloc(self, nbytes: int, tag: str = "") -> PinnedBuffer:
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self._live_bytes + nbytes > self.capacity:
            raise PinnedMemoryError(
                f"pinned-memory budget exceeded: {self._live_bytes} + {nbytes} "
                f"> {self.capacity} bytes"
                + (f" (allocating {tag!r})" if tag else "")
            )
        buffer = PinnedBuffer(self._next_id, nbytes, tag)
        self._next_id += 1
        self._live[buffer.buffer_id] = buffer
        self._live_bytes += nbytes
        self._peak_bytes = max(self._peak_bytes, self._live_bytes)
        self._total_allocated += nbytes
        return buffer

    def free(self, buffer: PinnedBuffer) -> None:
        if buffer.buffer_id not in self._live:
            raise ValueError(f"pinned buffer {buffer.buffer_id} is not live")
        del self._live[buffer.buffer_id]
        self._live_bytes -= buffer.size

    def free_all(self) -> None:
        self._live.clear()
        self._live_bytes = 0

    @property
    def live_bytes(self) -> int:
        return self._live_bytes

    @property
    def peak_bytes(self) -> int:
        """High-water mark — Figure 12's "offload size"."""
        return self._peak_bytes

    @property
    def total_allocated(self) -> int:
        """Cumulative bytes ever pinned (traffic, not residency)."""
        return self._total_allocated

"""Memory-usage tracking over (simulated) time.

Figure 11 reports two statistics per configuration:

* **maximum** memory usage — the largest amount allocated at any instant,
  which "decides whether the target DNN application can be trained at
  all", and
* **average** memory usage — time-weighted mean of the live-byte curve,
  which measures how much memory the policy keeps free for other uses
  (bigger workspaces, fewer offloads).

:class:`UsageTracker` consumes (timestamp, live_bytes) samples emitted by
the executor every time the pool's occupancy changes and produces both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class UsageSample:
    time: float
    live_bytes: int


class UsageTracker:
    """Collects a step function of live bytes over simulated time."""

    def __init__(self) -> None:
        self._samples: List[UsageSample] = []

    def record(self, time: float, live_bytes: int) -> None:
        """Append one sample; timestamps must be non-decreasing."""
        if live_bytes < 0:
            raise ValueError("live_bytes cannot be negative")
        if self._samples and time < self._samples[-1].time:
            raise ValueError(
                f"time went backwards: {time} after {self._samples[-1].time}"
            )
        self._samples.append(UsageSample(time, live_bytes))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UsageTracker):
            return NotImplemented
        return self._samples == other._samples

    __hash__ = None  # mutable container; value-equal, not hashable

    # ------------------------------------------------------------------
    @property
    def samples(self) -> List[UsageSample]:
        return list(self._samples)

    @property
    def max_bytes(self) -> int:
        """Peak of the recorded curve (0 when empty)."""
        return max((s.live_bytes for s in self._samples), default=0)

    @property
    def average_bytes(self) -> float:
        """Time-weighted average of the live-byte step function.

        Falls back to the arithmetic mean of the samples when all
        samples share one timestamp (e.g. analytic, zero-duration runs).
        """
        if not self._samples:
            return 0.0
        duration = self._samples[-1].time - self._samples[0].time
        if duration <= 0:
            return sum(s.live_bytes for s in self._samples) / len(self._samples)
        weighted = 0.0
        for current, following in zip(self._samples, self._samples[1:]):
            weighted += current.live_bytes * (following.time - current.time)
        return weighted / duration

    def curve(self) -> List[Tuple[float, int]]:
        """The raw (time, live_bytes) step function."""
        return [(s.time, s.live_bytes) for s in self._samples]

"""Memory-usage tracking over (simulated) time.

Figure 11 reports two statistics per configuration:

* **maximum** memory usage — the largest amount allocated at any instant,
  which "decides whether the target DNN application can be trained at
  all", and
* **average** memory usage — time-weighted mean of the live-byte curve,
  which measures how much memory the policy keeps free for other uses
  (bigger workspaces, fewer offloads).

:class:`UsageTracker` consumes (timestamp, live_bytes) samples emitted by
the executor every time the pool's occupancy changes and produces both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class UsageSample:
    time: float
    live_bytes: int


class UsageTracker:
    """Collects a step function of live bytes over simulated time.

    Slot-based like :class:`~repro.sim.timeline.Timeline`: samples live
    in two parallel arrays and :class:`UsageSample` objects are only
    materialised by the :attr:`samples` view, so the simulator's
    per-alloc/free sampling appends two scalars instead of constructing
    a dataclass.
    """

    __slots__ = ("_times", "_bytes")

    def __init__(self) -> None:
        self._times: List[float] = []
        self._bytes: List[int] = []

    def record(self, time: float, live_bytes: int) -> None:
        """Append one sample; timestamps must be non-decreasing."""
        if live_bytes < 0:
            raise ValueError("live_bytes cannot be negative")
        times = self._times
        if times and time < times[-1]:
            raise ValueError(
                f"time went backwards: {time} after {times[-1]}"
            )
        times.append(time)
        self._bytes.append(live_bytes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UsageTracker):
            return NotImplemented
        # Bit-identity is the contract here, not approximation: two
        # trackers are equal iff they recorded identical curves.
        return self._times == other._times \
            and self._bytes == other._bytes  # repro: allow(LINT204)

    __hash__ = None  # mutable container; value-equal, not hashable

    def __getstate__(self) -> Tuple[List[float], List[int]]:
        return (self._times, self._bytes)

    def __setstate__(self, state) -> None:
        self._times, self._bytes = state

    # ------------------------------------------------------------------
    @property
    def samples(self) -> List[UsageSample]:
        return [UsageSample(t, b) for t, b in zip(self._times, self._bytes)]

    @property
    def max_bytes(self) -> int:
        """Peak of the recorded curve (0 when empty)."""
        return max(self._bytes, default=0)

    @property
    def average_bytes(self) -> float:
        """Time-weighted average of the live-byte step function.

        Falls back to the arithmetic mean of the samples when all
        samples share one timestamp (e.g. analytic, zero-duration runs).
        """
        times, live = self._times, self._bytes
        if not times:
            return 0.0
        duration = times[-1] - times[0]
        if duration <= 0:
            return sum(live) / len(live)
        weighted = 0.0
        for i in range(len(times) - 1):
            weighted += live[i] * (times[i + 1] - times[i])
        return weighted / duration

    def curve(self) -> List[Tuple[float, int]]:
        """The raw (time, live_bytes) step function."""
        return list(zip(self._times, self._bytes))

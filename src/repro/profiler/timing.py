"""Timing profiles: per-layer latency and reuse distance (Figure 6).

The *reuse distance* of layer(n)'s input X is "the latency between the
completion of layer(n)'s forward propagation and the start of the same
layer(n)'s backward propagation" — milliseconds to seconds even for
mid-network layers, which is the slack vDNN's offload/prefetch rides on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.algo_config import AlgoConfig
from ..core.executor import IterationResult, simulate_baseline
from ..graph.layer import LayerKind
from ..graph.network import Network
from ..hw.config import SystemConfig
from ..sim.timeline import EventKind


@dataclass
class LayerTimingRow:
    """One x-position of Figure 6."""

    name: str
    kind: str
    forward_seconds: float
    backward_seconds: float
    reuse_distance_seconds: float


def layer_timing_profile(
    network: Network,
    system: SystemConfig,
    algos: AlgoConfig,
    result: IterationResult = None,
) -> List[LayerTimingRow]:
    """Forward/backward latency and reuse distance per weighted layer.

    Measured on a baseline (no-offload) timeline by default so that the
    distances reflect pure computation, matching the paper's setup; pass
    a pre-computed ``result`` to profile another configuration.
    """
    if result is None:
        result = simulate_baseline(network, system.with_oracular_gpu(), algos)
    timeline = result.timeline

    rows = []
    for node in network:
        if node.kind not in (LayerKind.CONV, LayerKind.FC):
            continue
        events = timeline.for_layer(node.index)
        fwd = [e for e in events if e.kind is EventKind.FORWARD]
        bwd = [e for e in events if e.kind is EventKind.BACKWARD]
        if not fwd or not bwd:
            continue
        rows.append(LayerTimingRow(
            name=node.name,
            kind=node.kind.value,
            forward_seconds=sum(e.duration for e in fwd),
            backward_seconds=sum(e.duration for e in bwd),
            reuse_distance_seconds=max(bwd[0].start - fwd[-1].end, 0.0),
        ))
    return rows

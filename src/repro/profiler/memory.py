"""Memory profiling: the analyses behind Figures 1, 4 and 5.

* :func:`baseline_memory_profile` — the network-wide allocation size and
  the maximum fraction of it that is actually *used* at any instant when
  training proceeds layer-wise (Figure 1's two axes).  The gap between
  the two is the paper's motivating observation: 53-79% of allocated
  memory is never simultaneously live.
* :func:`memory_breakdown` — allocation split by functionality: weights,
  feature maps, gradient maps, workspace (Figure 4).
* :func:`per_layer_profile` — per-layer X+Y+WS vs. weights for the
  layers that carry weights (Figure 5, VGG-16 style).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.algo_config import AlgoConfig
from ..core.executor import baseline_allocation_bytes
from ..core.liveness import LivenessAnalysis
from ..graph.layer import LayerKind
from ..graph.network import Network, NetworkNode


def _working_set_bytes(
    network: Network,
    liveness: LivenessAnalysis,
    node: NetworkNode,
    algos: AlgoConfig,
    backward: bool,
) -> int:
    """Bytes one layer's kernel actually touches at that instant."""
    total = node.weight_bytes + algos.workspace_bytes(node)
    own = liveness.storage_of(node.index)

    if not backward:
        # Forward reads X, writes Y.
        seen = {own.owner}
        total += own.nbytes
        for storage in liveness.input_storages(node.index):
            if storage.owner not in seen:
                seen.add(storage.owner)
                total += storage.nbytes
        return total

    # Backward reads dY (always), X and/or Y only if the kernel needs
    # them, and writes dX (one per input storage) and dW.
    total += own.nbytes  # dY
    total += node.weight_bytes  # dW
    seen = set()
    if node.layer.backward_needs_y:
        seen.add(own.owner)
        total += own.nbytes
    for storage in liveness.input_storages(node.index):
        total += storage.nbytes  # dX
        if node.layer.backward_needs_x and storage.owner not in seen:
            seen.add(storage.owner)
            total += storage.nbytes
    return total


@dataclass
class BaselineProfile:
    """Figure 1's two axes for one network."""

    network_name: str
    allocation_bytes: int
    max_layer_usage_bytes: int

    @property
    def max_usage_fraction(self) -> float:
        if self.allocation_bytes == 0:
            return 0.0
        return self.max_layer_usage_bytes / self.allocation_bytes

    @property
    def unused_fraction(self) -> float:
        return 1.0 - self.max_usage_fraction


def baseline_memory_profile(
    network: Network, algos: AlgoConfig
) -> BaselineProfile:
    """Network-wide allocation vs. the largest layer-wise working set."""
    liveness = LivenessAnalysis(network)
    total = baseline_allocation_bytes(network, algos, liveness)["total"]
    max_ws = 0
    for node in network:
        if node.kind is LayerKind.INPUT:
            continue
        max_ws = max(
            max_ws,
            _working_set_bytes(network, liveness, node, algos, backward=False),
            _working_set_bytes(network, liveness, node, algos, backward=True),
        )
    return BaselineProfile(network.name, total, max_ws)


def memory_breakdown(network: Network, algos: AlgoConfig) -> Dict[str, int]:
    """Figure 4: allocation by functionality, plus the feature-map share.

    Keys: ``weights`` (W + dW), ``feature_maps``, ``gradient_maps``,
    ``workspace``, ``total``, and ``feature_map_fraction``.
    """
    raw = baseline_allocation_bytes(network, algos)
    breakdown = {
        "weights": raw["weights"] + raw["weight_gradients"],
        "feature_maps": raw["feature_maps"],
        "gradient_maps": raw["gradient_maps"],
        "workspace": raw["workspace"],
        "total": raw["total"],
    }
    breakdown["feature_map_fraction"] = (
        breakdown["feature_maps"] / breakdown["total"] if breakdown["total"] else 0.0
    )
    return breakdown


@dataclass
class LayerMemoryRow:
    """One bar group of Figure 5."""

    name: str
    kind: str
    region: str                 # "feature extraction" | "classifier"
    feature_map_bytes: int      # X + Y for this layer
    workspace_bytes: int
    weight_bytes: int


def per_layer_profile(network: Network, algos: AlgoConfig) -> List[LayerMemoryRow]:
    """Per-layer memory usage for weighted layers (Figure 5)."""
    liveness = LivenessAnalysis(network)
    rows = []
    for node in network:
        if node.kind not in (LayerKind.CONV, LayerKind.FC):
            continue
        fmap = liveness.storage_of(node.index).nbytes
        seen = {liveness.storage_of(node.index).owner}
        for storage in liveness.input_storages(node.index):
            if storage.owner not in seen:
                seen.add(storage.owner)
                fmap += storage.nbytes
        rows.append(LayerMemoryRow(
            name=node.name,
            kind=node.kind.value,
            region=("feature extraction" if node.is_feature_extraction
                    else "classifier"),
            feature_map_bytes=fmap,
            workspace_bytes=algos.workspace_bytes(node),
            weight_bytes=node.weight_bytes,
        ))
    return rows


def feature_extraction_share(network: Network) -> float:
    """Fraction of feature-map bytes in the feature-extraction region.

    The paper quotes 81% for AlexNet and 96% for VGG-16 (256) —
    the justification for targeting only those layers (Section III).
    """
    liveness = LivenessAnalysis(network)
    total = feat = 0
    for storage in liveness.all_storages():
        total += storage.nbytes
        if network[storage.owner].is_feature_extraction:
            feat += storage.nbytes
    return feat / total if total else 0.0

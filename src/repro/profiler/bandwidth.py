"""DRAM-bandwidth profiling (Figure 13) and PCIe headroom analysis.

Figure 13 plots each CONV layer's achieved device-DRAM bandwidth during
forward and backward propagation.  The paper's point: feature-extraction
kernels sustain well under the 336 GB/s peak, so vDNN's extra
offload/prefetch traffic (bounded by PCIe's 16 GB/s) costs at most
``16/336 = 4.7%`` even against a hypothetical bandwidth-saturating
kernel (Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.algo_config import AlgoConfig
from ..graph.layer import LayerKind
from ..graph.network import Network
from ..hw.config import SystemConfig
from ..kernels.latency import LatencyModel


@dataclass
class BandwidthRow:
    """One x-position of Figure 13."""

    name: str
    kind: str
    forward_bandwidth: float     # bytes/s achieved during forward
    backward_bandwidth: float    # bytes/s achieved during backward

    def forward_utilization(self, peak: float) -> float:
        return self.forward_bandwidth / peak

    def backward_utilization(self, peak: float) -> float:
        return self.backward_bandwidth / peak


def dram_bandwidth_profile(
    network: Network, system: SystemConfig, algos: AlgoConfig
) -> List[BandwidthRow]:
    """Achieved DRAM bandwidth per weighted layer, fwd and bwd."""
    latency = LatencyModel(system.gpu)
    rows = []
    for node in network:
        if node.kind not in (LayerKind.CONV, LayerKind.FC):
            continue
        fwd = latency.forward(network, node, algos.profile(node))
        bwd = latency.backward(network, node, algos.profile(node))
        rows.append(BandwidthRow(
            name=node.name,
            kind=node.kind.value,
            forward_bandwidth=fwd.dram_bandwidth,
            backward_bandwidth=bwd.dram_bandwidth,
        ))
    return rows


def worst_case_interference(system: SystemConfig) -> float:
    """Upper bound on vDNN's slowdown from stolen DRAM bandwidth.

    Even if a future convolution saturated device DRAM completely, the
    offload/prefetch traffic is capped by the PCIe line rate, so the
    worst-case overhead is ``pcie_max / dram_peak`` (4.7% on the paper's
    testbed).
    """
    return system.pcie.max_bandwidth / system.gpu.dram_bandwidth

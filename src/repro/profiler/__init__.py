"""Profiling: memory, timing and bandwidth analyses behind the figures."""

from .bandwidth import BandwidthRow, dram_bandwidth_profile, worst_case_interference
from .memory import (
    BaselineProfile,
    LayerMemoryRow,
    baseline_memory_profile,
    feature_extraction_share,
    memory_breakdown,
    per_layer_profile,
)
from .timing import LayerTimingRow, layer_timing_profile

__all__ = [
    "BandwidthRow",
    "BaselineProfile",
    "LayerMemoryRow",
    "LayerTimingRow",
    "baseline_memory_profile",
    "dram_bandwidth_profile",
    "feature_extraction_share",
    "layer_timing_profile",
    "memory_breakdown",
    "per_layer_profile",
    "worst_case_interference",
]
